"""B+tree multimap.

Classic B+tree: values live only in leaves, leaves form a sorted linked
list for range scans, internal nodes hold separator keys.  Deletion
rebalances by borrowing from a sibling or merging, so the height invariant
holds under any workload — hypothesis tests in
``tests/indexstructures/test_btree.py`` check this against an oracle.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Any, Iterator, List, Optional, Tuple

from repro.indexstructures.base import Index, IndexKind, PageHook

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("node_id", "keys")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.keys: List[Any] = []


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.values: List[List[Any]] = []
        self.next: Optional[_Leaf] = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.children: List[_Node] = []


class BPlusTree(Index):
    """A B+tree multimap with leaf-chained range scans.

    ``order`` is the maximum number of keys per node; nodes split above it
    and rebalance below ``order // 2``.
    """

    kind = IndexKind.BTREE

    def __init__(self, order: int = DEFAULT_ORDER, page_hook: PageHook = None) -> None:
        if order < 3:
            raise ValueError(f"order must be >= 3: {order}")
        self.order = order
        self._page_hook = page_hook
        self._ids = itertools.count()
        self._root: _Node = _Leaf(next(self._ids))
        self._size = 0
        self._height = 1

    # -- cost accounting -------------------------------------------------

    def _touch(self, node: _Node, write: bool = False) -> None:
        if self._page_hook is not None:
            self._page_hook(node.node_id, write)

    # -- properties ------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaves (1 for a single-leaf tree)."""
        return self._height

    # -- search ----------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            self._touch(node)
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        self._touch(node)
        return node  # type: ignore[return-value]

    def get(self, key: Any) -> List[Any]:
        """All values stored under exactly ``key`` ([] if absent)."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range(self, low: Any = None, high: Any = None,
              include_low: bool = True, include_high: bool = True) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) pairs with low <= key <= high in key order.

        ``None`` bounds are open-ended; ``include_*`` toggles strictness.
        """
        if low is None:
            leaf: Optional[_Leaf] = self._leftmost_leaf()
            idx = 0
        else:
            leaf = self._find_leaf(low)
            if include_low:
                idx = bisect.bisect_left(leaf.keys, low)
            else:
                idx = bisect.bisect_right(leaf.keys, low)
        while leaf is not None:
            self._touch(leaf)
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if high is not None:
                    if include_high:
                        if key > high:
                            return
                    elif key >= high:
                        return
                for value in leaf.values[idx]:
                    yield key, value
                idx += 1
            leaf = leaf.next
            idx = 0

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Every (key, value) pair in ascending key order."""
        return self.range()

    def min_key(self) -> Any:
        """Smallest key, or None when empty."""
        leaf = self._leftmost_leaf()
        return leaf.keys[0] if leaf.keys else None

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            self._touch(node)
            node = node.children[0]
        return node  # type: ignore[return-value]

    # -- insert ----------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Add one (key, value) pair; duplicate pairs are idempotent."""
        split = self._insert(self._root, key, value, rightmost=True)
        if split is not None:
            sep, right = split
            new_root = _Internal(next(self._ids))
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
            self._touch(new_root, write=True)

    def _insert(self, node: _Node, key: Any, value: Any,
                rightmost: bool = False) -> Optional[Tuple[Any, _Node]]:
        if isinstance(node, _Leaf):
            return self._insert_leaf(node, key, value, rightmost)
        self._touch(node)
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value,
                             rightmost and idx == len(node.children) - 1)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        self._touch(node, write=True)
        if len(node.keys) <= self.order:
            return None
        return self._split_internal(
            node, biased=rightmost and idx == len(node.keys) - 1)

    def _insert_leaf(self, leaf: _Leaf, key: Any, value: Any,
                     rightmost: bool = False) -> Optional[Tuple[Any, _Node]]:
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            if value not in leaf.values[idx]:
                leaf.values[idx].append(value)
                self._size += 1
            self._touch(leaf, write=True)
            return None
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, [value])
        self._size += 1
        self._touch(leaf, write=True)
        if len(leaf.keys) <= self.order:
            return None
        return self._split_leaf(
            leaf, biased=rightmost and idx == len(leaf.keys) - 1)

    def _split_leaf(self, leaf: _Leaf, biased: bool = False) -> Tuple[Any, _Node]:
        # A mid split of an append-frontier leaf (rightmost leaf, key
        # landing at the end) freezes every leaf at 50% occupancy under
        # monotonically increasing keys.  Bias the split instead: the
        # left leaf stays full, the new rightmost leaf starts nearly
        # empty and fills up as the append run continues.
        mid = len(leaf.keys) - 1 if biased else len(leaf.keys) // 2
        right = _Leaf(next(self._ids))
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        self._touch(right, write=True)
        return right.keys[0], right

    def _split_internal(self, node: _Internal, biased: bool = False) -> Tuple[Any, _Node]:
        # Same append-frontier bias one level up: keep the left node
        # full, start the new rightmost internal with a single child.
        mid = len(node.keys) - 1 if biased else len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal(next(self._ids))
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        self._touch(right, write=True)
        return sep, right

    # -- delete ----------------------------------------------------------

    def remove(self, key: Any, value: Any = None) -> int:
        """Remove one value under ``key`` (or all); returns pairs removed."""
        removed = self._remove(self._root, key, value)
        if isinstance(self._root, _Internal) and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._height -= 1
        self._size -= removed
        return removed

    def _min_keys(self) -> int:
        return self.order // 2

    def _remove(self, node: _Node, key: Any, value: Any) -> int:
        if isinstance(node, _Leaf):
            return self._remove_from_leaf(node, key, value)
        self._touch(node)
        idx = bisect.bisect_right(node.keys, key)
        child = node.children[idx]
        removed = self._remove(child, key, value)
        if removed and self._underflow(child):
            self._rebalance(node, idx)
        return removed

    def _remove_from_leaf(self, leaf: _Leaf, key: Any, value: Any) -> int:
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return 0
        if value is None:
            removed = len(leaf.values[idx])
        else:
            if value not in leaf.values[idx]:
                return 0
            leaf.values[idx].remove(value)
            removed = 1
        if value is None or not leaf.values[idx]:
            del leaf.keys[idx]
            del leaf.values[idx]
        self._touch(leaf, write=True)
        return removed

    def _underflow(self, node: _Node) -> bool:
        if node is self._root:
            return False
        if isinstance(node, _Leaf):
            return len(node.keys) < self._min_keys()
        return len(node.children) < self._min_keys() + 1

    def _rebalance(self, parent: _Internal, idx: int) -> None:
        child = parent.children[idx]
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None
        if left is not None and self._can_lend(left):
            self._borrow_from_left(parent, idx)
        elif right is not None and self._can_lend(right):
            self._borrow_from_right(parent, idx)
        elif left is not None:
            self._merge(parent, idx - 1)
        elif right is not None:
            self._merge(parent, idx)
        self._touch(parent, write=True)

    def _can_lend(self, node: _Node) -> bool:
        if isinstance(node, _Leaf):
            return len(node.keys) > self._min_keys()
        return len(node.children) > self._min_keys() + 1

    def _borrow_from_left(self, parent: _Internal, idx: int) -> None:
        left, child = parent.children[idx - 1], parent.children[idx]
        if isinstance(child, _Leaf):
            assert isinstance(left, _Leaf)
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            assert isinstance(left, _Internal) and isinstance(child, _Internal)
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        self._touch(left, write=True)
        self._touch(child, write=True)

    def _borrow_from_right(self, parent: _Internal, idx: int) -> None:
        child, right = parent.children[idx], parent.children[idx + 1]
        if isinstance(child, _Leaf):
            assert isinstance(right, _Leaf)
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            assert isinstance(right, _Internal) and isinstance(child, _Internal)
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        self._touch(right, write=True)
        self._touch(child, write=True)

    def _merge(self, parent: _Internal, idx: int) -> None:
        """Merge children[idx+1] into children[idx]."""
        left, right = parent.children[idx], parent.children[idx + 1]
        if isinstance(left, _Leaf):
            assert isinstance(right, _Leaf)
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            assert isinstance(left, _Internal) and isinstance(right, _Internal)
            left.keys.append(parent.keys[idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[idx]
        del parent.children[idx + 1]
        self._touch(left, write=True)

    # -- bulk loading -----------------------------------------------------

    @classmethod
    def bulk_load(cls, pairs, order: int = DEFAULT_ORDER,
                  page_hook: PageHook = None) -> "BPlusTree":
        """Build a tree from (key, value) pairs in one bottom-up pass.

        Much faster than repeated inserts for restore/adoption paths
        (sorted leaf runs are packed ~full, then internal levels built on
        top).  Input need not be sorted or unique; duplicate (key, value)
        pairs collapse.
        """
        tree = cls(order=order, page_hook=page_hook)
        grouped: dict = {}
        for key, value in pairs:
            bucket = grouped.setdefault(key, [])
            if value not in bucket:
                bucket.append(value)
        if not grouped:
            return tree
        sorted_keys = sorted(grouped)
        fill = max(2, (order * 2) // 3)  # pack leaves ~2/3 full
        min_keys = order // 2
        leaves: List[_Leaf] = []
        for i in range(0, len(sorted_keys), fill):
            leaf = _Leaf(next(tree._ids))
            leaf.keys = sorted_keys[i:i + fill]
            leaf.values = [grouped[k] for k in leaf.keys]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        # The last leaf may be under-full: even it out with its neighbor
        # so the min-fill invariant holds for later deletes.
        if len(leaves) > 1 and len(leaves[-1].keys) < min_keys:
            prev, last = leaves[-2], leaves[-1]
            merged_keys = prev.keys + last.keys
            merged_values = prev.values + last.values
            if len(merged_keys) <= order:
                # Fold the runt into its neighbor entirely.
                prev.keys, prev.values = merged_keys, merged_values
                prev.next = last.next
                leaves.pop()
            else:
                half = len(merged_keys) // 2
                prev.keys, last.keys = merged_keys[:half], merged_keys[half:]
                prev.values, last.values = merged_values[:half], merged_values[half:]
        tree._size = sum(len(v) for v in grouped.values())
        level: List[_Node] = list(leaves)
        height = 1
        min_children = min_keys + 1
        while len(level) > 1:
            parents: List[_Internal] = []
            for i in range(0, len(level), fill + 1):
                node = _Internal(next(tree._ids))
                node.children = level[i:i + fill + 1]
                node.keys = [tree._leftmost_key_of(c) for c in node.children[1:]]
                parents.append(node)
            # Even out an under-full last parent the same way.
            if len(parents) > 1 and len(parents[-1].children) < min_children:
                prev, last = parents[-2], parents[-1]
                merged = prev.children + last.children
                if len(merged) <= order + 1:
                    prev.children = merged
                    prev.keys = [tree._leftmost_key_of(c) for c in merged[1:]]
                    parents.pop()
                else:
                    half = len(merged) // 2
                    prev.children, last.children = merged[:half], merged[half:]
                    prev.keys = [tree._leftmost_key_of(c) for c in prev.children[1:]]
                    last.keys = [tree._leftmost_key_of(c) for c in last.children[1:]]
            level = list(parents)
            height += 1
        tree._root = level[0]
        tree._height = height
        return tree

    def _leftmost_key_of(self, node: _Node) -> Any:
        while isinstance(node, _Internal):
            node = node.children[0]
        return node.keys[0]

    # -- bulk insert (group commit) ----------------------------------------

    def bulk_insert(self, pairs) -> int:
        """Merge a sorted run of (key, value) pairs into the live tree.

        The group-commit counterpart of :meth:`bulk_load`: instead of one
        tree descent per pair, the input is sorted once, partitioned down
        the tree, and merged leaf-at-a-time; overflowing nodes split
        multi-way into ~2/3-full chunks (same fill/runt policy as
        ``bulk_load``).  Returns the number of pairs actually added
        (duplicates are idempotent, as with :meth:`insert`).
        """
        grouped: dict = {}
        for key, value in pairs:
            bucket = grouped.setdefault(key, [])
            if value not in bucket:
                bucket.append(value)
        if not grouped:
            return 0
        items = sorted(grouped.items())
        added_before = self._size
        nodes = self._bulk_merge(self._root, items)
        fill = max(2, (self.order * 2) // 3)
        min_children = self._min_keys() + 1
        while len(nodes) > 1:
            parents: List[_Internal] = []
            for i in range(0, len(nodes), fill + 1):
                parent = _Internal(next(self._ids))
                parent.children = nodes[i:i + fill + 1]
                parent.keys = [self._leftmost_key_of(c) for c in parent.children[1:]]
                self._touch(parent, write=True)
                parents.append(parent)
            if len(parents) > 1 and len(parents[-1].children) < min_children:
                prev, last = parents[-2], parents[-1]
                merged = prev.children + last.children
                if len(merged) <= self.order + 1:
                    prev.children = merged
                    prev.keys = [self._leftmost_key_of(c) for c in merged[1:]]
                    parents.pop()
                else:
                    half = len(merged) // 2
                    prev.children, last.children = merged[:half], merged[half:]
                    prev.keys = [self._leftmost_key_of(c) for c in prev.children[1:]]
                    last.keys = [self._leftmost_key_of(c) for c in last.children[1:]]
            nodes = list(parents)
            self._height += 1
        self._root = nodes[0]
        return self._size - added_before

    def _bulk_merge(self, node: _Node, items: List[Tuple[Any, List[Any]]]) -> List[_Node]:
        """Merge sorted ``(key, bucket)`` items into ``node``'s subtree.

        Returns the node(s) replacing ``node`` at its level — the first
        entry is always ``node`` itself (so an untouched parent pointer
        stays valid); extras are freshly split right siblings, each at
        least min-full thanks to the runt fixup.
        """
        if isinstance(node, _Leaf):
            return self._bulk_merge_leaf(node, items)
        self._touch(node)
        out_children: List[_Node] = []
        i = 0
        for ci, child in enumerate(node.children):
            hi = node.keys[ci] if ci < len(node.keys) else None
            j = i
            while hi is not None and j < len(items) and items[j][0] < hi:
                j += 1
            if hi is None:
                j = len(items)
            if j > i:
                out_children.extend(self._bulk_merge(child, items[i:j]))
            else:
                out_children.append(child)
            i = j
        node.children = out_children
        node.keys = [self._leftmost_key_of(c) for c in out_children[1:]]
        self._touch(node, write=True)
        if len(node.children) <= self.order + 1:
            return [node]
        # Multi-way internal split, ~2/3-full chunks with runt fixup.
        fill = max(2, (self.order * 2) // 3)
        min_children = self._min_keys() + 1
        chunks = [node.children[i:i + fill + 1]
                  for i in range(0, len(node.children), fill + 1)]
        if len(chunks) > 1 and len(chunks[-1]) < min_children:
            merged = chunks[-2] + chunks[-1]
            if len(merged) <= self.order + 1:
                chunks[-2:] = [merged]
            else:
                half = len(merged) // 2
                chunks[-2:] = [merged[:half], merged[half:]]
        node.children = chunks[0]
        node.keys = [self._leftmost_key_of(c) for c in node.children[1:]]
        out: List[_Node] = [node]
        for chunk in chunks[1:]:
            sibling = _Internal(next(self._ids))
            sibling.children = chunk
            sibling.keys = [self._leftmost_key_of(c) for c in chunk[1:]]
            self._touch(sibling, write=True)
            out.append(sibling)
        return out

    def _bulk_merge_leaf(self, leaf: _Leaf, items: List[Tuple[Any, List[Any]]]) -> List[_Node]:
        merged_keys: List[Any] = []
        merged_values: List[List[Any]] = []
        i = j = 0
        keys, values = leaf.keys, leaf.values
        while i < len(keys) and j < len(items):
            if keys[i] < items[j][0]:
                merged_keys.append(keys[i])
                merged_values.append(values[i])
                i += 1
            elif items[j][0] < keys[i]:
                merged_keys.append(items[j][0])
                merged_values.append(list(items[j][1]))
                self._size += len(items[j][1])
                j += 1
            else:
                bucket = values[i]
                for v in items[j][1]:
                    if v not in bucket:
                        bucket.append(v)
                        self._size += 1
                merged_keys.append(keys[i])
                merged_values.append(bucket)
                i += 1
                j += 1
        merged_keys.extend(keys[i:])
        merged_values.extend(values[i:])
        for k, bucket in items[j:]:
            merged_keys.append(k)
            merged_values.append(list(bucket))
            self._size += len(bucket)
        if len(merged_keys) <= self.order:
            leaf.keys, leaf.values = merged_keys, merged_values
            self._touch(leaf, write=True)
            return [leaf]
        # Multi-way leaf split, same fill/runt policy as bulk_load.
        fill = max(2, (self.order * 2) // 3)
        min_keys = self._min_keys()
        chunks = [(merged_keys[i:i + fill], merged_values[i:i + fill])
                  for i in range(0, len(merged_keys), fill)]
        if len(chunks) > 1 and len(chunks[-1][0]) < min_keys:
            ck = chunks[-2][0] + chunks[-1][0]
            cv = chunks[-2][1] + chunks[-1][1]
            if len(ck) <= self.order:
                chunks[-2:] = [(ck, cv)]
            else:
                half = len(ck) // 2
                chunks[-2:] = [(ck[:half], cv[:half]), (ck[half:], cv[half:])]
        old_next = leaf.next
        leaf.keys, leaf.values = chunks[0]
        self._touch(leaf, write=True)
        out: List[_Node] = [leaf]
        prev = leaf
        for ck, cv in chunks[1:]:
            sibling = _Leaf(next(self._ids))
            sibling.keys, sibling.values = ck, cv
            prev.next = sibling
            prev = sibling
            self._touch(sibling, write=True)
            out.append(sibling)
        prev.next = old_next
        return out

    # -- validation (used by tests) ---------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants; raises AssertionError on violation.

        Nodes on the rightmost spine are append frontiers — biased splits
        leave them under-full on purpose, so the min-fill bound applies
        to every *other* node.
        """
        self._check_node(self._root, depth=1, is_root=True, rightmost=True)
        # Leaf chain must be sorted and cover all keys.
        keys = [k for k, _ in self.items()]
        assert keys == sorted(keys), "leaf chain out of order"

    def _check_node(self, node: _Node, depth: int, is_root: bool,
                    rightmost: bool = False) -> int:
        assert node.keys == sorted(node.keys), "node keys out of order"
        if isinstance(node, _Leaf):
            assert depth == self._height, "leaf at wrong depth"
            if not is_root:
                if rightmost:
                    assert len(node.keys) >= 1, "empty frontier leaf"
                else:
                    assert len(node.keys) >= self._min_keys(), "leaf underflow"
            assert len(node.keys) == len(node.values)
            return depth
        assert isinstance(node, _Internal)
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            if rightmost:
                assert len(node.children) >= 1, "empty frontier internal"
            else:
                assert len(node.children) >= self._min_keys() + 1, "internal underflow"
        else:
            assert len(node.children) >= 2, "root internal with one child"
        last = len(node.children) - 1
        depths = {self._check_node(c, depth + 1, False,
                                   rightmost and i == last)
                  for i, c in enumerate(node.children)}
        assert len(depths) == 1, "uneven leaf depth"
        return depths.pop()
