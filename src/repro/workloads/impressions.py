"""Impressions-style statistical namespace generation.

The paper cites Agrawal et al.'s *Impressions* (FAST'09) for generating
realistic file-system images.  This module grows a namespace from the
published metadata statistics rather than fixed templates:

* file sizes — lognormal body with a Pareto tail (most files are a few
  KB, a few are huge);
* directory shape — geometric subdirectory counts, depth-dependent file
  counts, plus the occasional giant fan-out directory that big-data
  datasets exhibit (Section III);
* extensions — drawn from an empirical popularity distribution.

Use it when template duplication (``populate_namespace``) is too uniform
— e.g. for Table V's "user laptop snapshot" flavor of dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.fs.vfs import VirtualFileSystem

# Empirical-ish extension popularity (mass ~desktop/OS image).
EXTENSION_WEIGHTS: List[Tuple[str, float]] = [
    ("txt", 0.08), ("h", 0.07), ("c", 0.06), ("py", 0.04), ("js", 0.05),
    ("html", 0.06), ("xml", 0.05), ("png", 0.07), ("jpg", 0.08),
    ("gif", 0.02), ("pdf", 0.03), ("doc", 0.02), ("mp3", 0.03),
    ("so", 0.09), ("o", 0.08), ("log", 0.05), ("dat", 0.06), ("bin", 0.06),
]


@dataclass(frozen=True)
class ImpressionsConfig:
    """Distribution parameters (defaults approximate the FAST'09 study
    at desktop scale)."""

    total_files: int = 10_000
    # Lognormal body of the size distribution (bytes).
    size_mu: float = 8.5          # median ≈ 4.9 KB
    size_sigma: float = 2.3
    # Pareto tail: fraction of files drawn from the heavy tail.
    tail_fraction: float = 0.015
    tail_alpha: float = 1.05
    tail_min_bytes: int = 8 * 1024**2
    # Directory shape.
    mean_subdirs: float = 3.0
    mean_files_per_dir: float = 12.0
    max_depth: int = 8
    # Probability a directory is a giant fan-out directory.
    fanout_dir_probability: float = 0.01
    fanout_dir_files: int = 500
    seed: int = 0


def _sample_size(rng: random.Random, config: ImpressionsConfig) -> int:
    if rng.random() < config.tail_fraction:
        # Pareto tail.
        u = max(rng.random(), 1e-12)
        return int(config.tail_min_bytes * u ** (-1.0 / config.tail_alpha))
    return max(1, int(rng.lognormvariate(config.size_mu, config.size_sigma)))


def _sample_extension(rng: random.Random) -> str:
    total = sum(w for _, w in EXTENSION_WEIGHTS)
    pick = rng.random() * total
    for ext, weight in EXTENSION_WEIGHTS:
        pick -= weight
        if pick <= 0:
            return ext
    return EXTENSION_WEIGHTS[-1][0]


def generate_impressions(vfs: VirtualFileSystem, root: str = "/impressions",
                         config: ImpressionsConfig = ImpressionsConfig(),
                         pid: int = -1) -> List[str]:
    """Grow a statistically shaped namespace; returns the file paths.

    Deterministic for a given ``config.seed``.  Stops at exactly
    ``config.total_files`` regular files.
    """
    rng = random.Random(config.seed)
    vfs.mkdir(root, parents=True)
    paths: List[str] = []
    # Breadth-first growth: (dir_path, depth).
    frontier: List[Tuple[str, int]] = [(root, 0)]
    dir_counter = 0
    file_counter = 0
    while frontier and len(paths) < config.total_files:
        dir_path, depth = frontier.pop(0)
        # Files in this directory.
        if rng.random() < config.fanout_dir_probability:
            n_files = config.fanout_dir_files
        else:
            n_files = max(0, int(rng.expovariate(1.0 / config.mean_files_per_dir)))
        for _ in range(n_files):
            if len(paths) >= config.total_files:
                break
            ext = _sample_extension(rng)
            path = f"{dir_path}/f{file_counter:07d}.{ext}"
            file_counter += 1
            vfs.write_file(path, _sample_size(rng, config), pid=pid)
            paths.append(path)
        # Subdirectories.
        if depth < config.max_depth:
            n_subdirs = max(0, int(rng.expovariate(1.0 / config.mean_subdirs)))
            for _ in range(n_subdirs):
                sub = f"{dir_path}/d{dir_counter:06d}"
                dir_counter += 1
                vfs.mkdir(sub)
                frontier.append((sub, depth + 1))
        # Never starve: keep at least one growable directory around.
        if not frontier and len(paths) < config.total_files:
            sub = f"{root}/overflow{dir_counter:06d}"
            dir_counter += 1
            vfs.mkdir(sub)
            frontier.append((sub, 1))
    return paths
