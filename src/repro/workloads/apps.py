"""Application models.

Two generators:

* :func:`table1_file_sets` — the four desktop applications of Table I
  (apt-get, Firefox, OpenOffice, Linux-kernel build) with the paper's
  *exact* accessed-file counts and pairwise common-file counts;
* :class:`CompileApplication` — compile-and-link workloads (Thrift, Git,
  Linux kernel) emitting open/close traces whose access-causality graphs
  match Table II's shape: exact vertex counts, approximate edge counts
  and weights, and the disconnected components visible in Figure 7.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.core.acg import AccessCausalityGraph
from repro.core.trace import AccessEvent, causal_pairs

# -- Table I ---------------------------------------------------------------------

# Accessed-file totals from Table I.
TABLE1_TOTALS = {
    "apt-get": 279,
    "firefox": 2279,
    "openoffice": 2696,
    "linux-kernel": 19715,
}

# Pairwise common-file counts from Table I (symmetric).
TABLE1_OVERLAPS = {
    frozenset(("apt-get", "firefox")): 31,
    frozenset(("apt-get", "openoffice")): 62,
    frozenset(("apt-get", "linux-kernel")): 29,
    frozenset(("firefox", "openoffice")): 464,
    frozenset(("firefox", "linux-kernel")): 48,
    frozenset(("openoffice", "linux-kernel")): 45,
}

_TABLE1_ROOTS = {
    "apt-get": "/var/lib/apt",
    "firefox": "/home/john/.mozilla",
    "openoffice": "/home/john/.openoffice",
    "linux-kernel": "/usr/src/linux",
}


def table1_file_sets() -> Dict[str, Set[str]]:
    """The four applications' accessed-file sets with exact overlaps.

    Shared files (system libraries, common config) live under ``/usr/lib``
    and appear in exactly the two applications Table I pairs them with;
    triple intersections are empty, matching the additive construction.
    """
    apps = list(TABLE1_TOTALS)
    sets: Dict[str, Set[str]] = {name: set() for name in apps}
    for pair, count in TABLE1_OVERLAPS.items():
        a, b = sorted(pair)
        for i in range(count):
            path = f"/usr/lib/shared/{a}--{b}/lib{i:04d}.so"
            sets[a].add(path)
            sets[b].add(path)
    for name in apps:
        own = TABLE1_TOTALS[name] - len(sets[name])
        root = _TABLE1_ROOTS[name]
        for i in range(own):
            sets[name].add(f"{root}/private/f{i:05d}.dat")
        assert len(sets[name]) == TABLE1_TOTALS[name]
    return sets


def table1_overlap_matrix(sets: Dict[str, Set[str]]) -> List[List[str]]:
    """Render rows shaped like Table I: counts + percentage of the
    *column* application's file set (the paper's convention — e.g. the
    apt-get row shows 31 (1.36%) under Firefox, 31/2279)."""
    apps = list(TABLE1_TOTALS)
    rows = []
    for row_app in apps:
        row = [row_app]
        for col_app in apps:
            if row_app == col_app:
                row.append("N/A")
                continue
            common = len(sets[row_app] & sets[col_app])
            pct = 100.0 * common / len(sets[col_app])
            row.append(f"{common} ({pct:.2f}%)")
        rows.append(row)
    return rows


# -- compile-style applications (Table II, Figure 7) -----------------------------


@dataclass(frozen=True)
class CompileAppSpec:
    """Shape parameters for a compile-and-link workload.

    ``groups`` independent build targets (disjoint header pools and
    binaries) yield ``groups`` disconnected ACG components — the structure
    Figure 7 shows for Thrift.  Within a group, headers are organized into
    ``modules`` directory-like pools: a unit includes mostly its own
    module's headers plus a few group-wide shared ones
    (``shared_header_fraction``), which is what gives real build ACGs
    their small balanced cuts (Table II).  Vertices = units (sources) +
    headers + units (objects) + groups (binaries).
    """

    name: str
    units: int
    headers: int
    groups: int
    headers_per_unit: int
    rebuilds: int = 1
    partial_rebuild_fraction: float = 0.0
    modules: int = 1
    shared_header_fraction: float = 0.0
    seed: int = 0

    @property
    def vertex_count(self) -> int:
        """Total files (sources + headers + objects + binaries)."""
        return 2 * self.units + self.headers + self.groups

    def __post_init__(self) -> None:
        if self.units < self.groups:
            raise ValueError("need at least one unit per group")
        if self.headers < self.groups:
            raise ValueError("need at least one header per group")
        if self.rebuilds < 1:
            raise ValueError("rebuilds must be >= 1")


# Tuned so vertex counts match Table II exactly and edge/weight totals
# land near the published values (measured numbers are reported by the
# Table II bench).
THRIFT_SPEC = CompileAppSpec("thrift", units=255, headers=263, groups=2,
                             headers_per_unit=32, rebuilds=6,
                             partial_rebuild_fraction=0.35,
                             modules=4, shared_header_fraction=0.03)
GIT_SPEC = CompileAppSpec("git", units=400, headers=215, groups=3,
                          headers_per_unit=5, rebuilds=1,
                          partial_rebuild_fraction=0.42)
# The paper's Linux ACG is one giant connected component (its two
# partition halves sum to all 62 331 vertices), so groups=1.
LINUX_SPEC = CompileAppSpec("linux", units=28000, headers=6330, groups=1,
                            headers_per_unit=210, rebuilds=1,
                            partial_rebuild_fraction=0.17,
                            modules=29, shared_header_fraction=0.02)


def scaled_spec(spec: CompileAppSpec, factor: float) -> CompileAppSpec:
    """Shrink a spec for quick runs (keeps the ratio structure)."""
    if factor >= 1.0:
        return spec
    return replace(
        spec,
        units=max(spec.groups, int(spec.units * factor)),
        headers=max(spec.groups, int(spec.headers * factor)),
        headers_per_unit=max(1, int(spec.headers_per_unit * factor)),
    )


class CompileApplication:
    """Generates build traces and file paths for one application."""

    def __init__(self, spec: CompileAppSpec) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed)
        base = 0
        self.source_ids = list(range(base, base + spec.units))
        base += spec.units
        self.header_ids = list(range(base, base + spec.headers))
        base += spec.headers
        self.object_ids = list(range(base, base + spec.units))
        base += spec.units
        self.binary_ids = list(range(base, base + spec.groups))
        # Assign units and headers to groups round-robin (disjoint pools).
        self.unit_group = [i % spec.groups for i in range(spec.units)]
        self.header_group = [i % spec.groups for i in range(spec.headers)]
        self._group_headers: List[List[int]] = [[] for _ in range(spec.groups)]
        for header, group in zip(self.header_ids, self.header_group):
            self._group_headers[group].append(header)
        # Split each group's headers into a small shared pool plus
        # per-module pools (directory structure).
        self._group_shared: List[List[int]] = []
        self._module_pools: List[List[List[int]]] = []
        for group in range(spec.groups):
            pool = self._group_headers[group]
            n_shared = int(len(pool) * spec.shared_header_fraction)
            shared, rest = pool[:n_shared], pool[n_shared:]
            self._group_shared.append(shared)
            modules = max(1, spec.modules)
            self._module_pools.append(
                [rest[m::modules] for m in range(modules)])
        # Fix each unit's header dependency set once: rebuilds re-touch the
        # same files, which is what multiplies edge weights (Figure 4).
        self._unit_headers: List[List[int]] = []
        for unit in range(spec.units):
            group = self.unit_group[unit]
            shared = self._group_shared[group]
            pools = self._module_pools[group]
            module_pool = pools[(unit // max(1, spec.groups)) % len(pools)]
            n_shared = min(len(shared),
                           int(round(spec.headers_per_unit
                                     * spec.shared_header_fraction)))
            n_own = min(len(module_pool), spec.headers_per_unit - n_shared)
            deps = self._rng.sample(module_pool, n_own)
            if n_shared:
                deps += self._rng.sample(shared, n_shared)
            self._unit_headers.append(deps)

    @property
    def file_count(self) -> int:
        """Total files this application touches."""
        return self.spec.vertex_count

    def path_of(self, file_id: int) -> str:
        """A plausible path for each synthetic file id."""
        spec = self.spec
        if file_id < spec.units:
            return f"/src/{spec.name}/src/unit{file_id:05d}.c"
        if file_id < spec.units + spec.headers:
            return f"/src/{spec.name}/include/hdr{file_id - spec.units:05d}.h"
        if file_id < 2 * spec.units + spec.headers:
            return f"/src/{spec.name}/build/unit{file_id - spec.units - spec.headers:05d}.o"
        return f"/src/{spec.name}/bin/target{file_id - 2 * spec.units - spec.headers:02d}"

    # -- trace generation ------------------------------------------------------

    def iter_processes(self) -> Iterator[List[AccessEvent]]:
        """Yield one process's event list at a time (compilers, then
        linkers), for all build runs: full builds × ``rebuilds``, then one
        partial rebuild touching ``partial_rebuild_fraction`` of the units.

        Streaming per process keeps Linux-scale traces (millions of
        events) out of memory.
        """
        t = 0.0
        pid = 1000
        runs: List[Sequence[int]] = [self._all_units() for _ in range(self.spec.rebuilds)]
        if self.spec.partial_rebuild_fraction > 0:
            count = int(self.spec.units * self.spec.partial_rebuild_fraction)
            runs.append(sorted(self._rng.sample(range(self.spec.units), count)))
        for units in runs:
            touched_groups: Set[int] = set()
            for unit in units:
                # One compiler process per translation unit.
                events = [AccessEvent(pid, self.source_ids[unit], True, False, t)]
                t += 1e-3
                for header in self._unit_headers[unit]:
                    events.append(AccessEvent(pid, header, True, False, t))
                    t += 1e-3
                events.append(AccessEvent(pid, self.object_ids[unit], False, True, t))
                t += 1e-3
                touched_groups.add(self.unit_group[unit])
                pid += 1
                yield events
            # One linker process per (re)built group.
            for group in sorted(touched_groups):
                events = []
                for unit in range(self.spec.units):
                    if self.unit_group[unit] == group:
                        events.append(AccessEvent(pid, self.object_ids[unit], True, False, t))
                        t += 1e-3
                events.append(AccessEvent(pid, self.binary_ids[group], False, True, t))
                t += 1e-3
                pid += 1
                yield events

    def _all_units(self) -> List[int]:
        return list(range(self.spec.units))

    def trace(self) -> List[AccessEvent]:
        """The full event stream as one list (small specs only)."""
        return [event for process in self.iter_processes() for event in process]

    def build_acg(self) -> AccessCausalityGraph:
        """Run the trace through causality extraction into an ACG."""
        graph = AccessCausalityGraph()
        for file_id in range(self.file_count):
            graph.add_file(file_id)
        for process_events in self.iter_processes():
            graph.add_pairs(causal_pairs(process_events))
        return graph
