"""Update-request stream generators (the Figure 2 sensitivity study).

Figure 2 issues 50 000 random update requests against a namespace split
into equal-size groups, varying (a) the group size and (b) how many groups
the stream touches.  These helpers produce the file-id streams for both
axes.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def partition_files(files: Sequence[T], group_size: int) -> List[List[T]]:
    """Chop a file list into consecutive equal-size groups."""
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1: {group_size}")
    return [list(files[i:i + group_size]) for i in range(0, len(files), group_size)]


def random_update_requests(files: Sequence[T], n_updates: int,
                           seed: int = 0) -> List[T]:
    """Uniformly random update targets over the whole file set."""
    rng = random.Random(seed)
    return [files[rng.randrange(len(files))] for _ in range(n_updates)]


def grouped_update_requests(groups: Sequence[Sequence[T]], n_updates: int,
                            touched_groups: int, seed: int = 0) -> List[T]:
    """Random update targets confined to ``touched_groups`` of the groups
    (Figure 2(b)'s inter-partition-access axis)."""
    if not 1 <= touched_groups <= len(groups):
        raise ValueError(
            f"touched_groups must be in [1, {len(groups)}]: {touched_groups}")
    rng = random.Random(seed)
    chosen = rng.sample(range(len(groups)), touched_groups)
    targets = [groups[g] for g in chosen]
    out: List[T] = []
    for _ in range(n_updates):
        group = targets[rng.randrange(len(targets))]
        out.append(group[rng.randrange(len(group))])
    return out
