"""Mixed update/search workload (Figure 10).

The paper feeds 10 000 updates to one 1 000-file group with one
file-search request every 1 024 updates, and a background re-index
('timeout' commit) every 500 updates, then reports per-request latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple, Union


@dataclass(frozen=True)
class MixedWorkloadConfig:
    """Figure 10's parameters, exposed as knobs."""

    n_updates: int = 10_000
    search_every: int = 1_024
    commit_every: int = 500
    query: str = "size>1m"
    seed: int = 0


# Each item is ("update", path), ("search", query) or ("commit", "").
MixedOp = Tuple[str, str]


def mixed_stream(paths: Sequence[str],
                 config: MixedWorkloadConfig = MixedWorkloadConfig()) -> Iterator[MixedOp]:
    """Yield the interleaved operation stream for one group of files."""
    if not paths:
        raise ValueError("need at least one file path")
    rng = random.Random(config.seed)
    for i in range(1, config.n_updates + 1):
        yield "update", paths[rng.randrange(len(paths))]
        if i % config.commit_every == 0:
            yield "commit", ""
        if i % config.search_every == 0:
            yield "search", config.query
