"""Namespace (dataset) builders.

The paper builds evaluation namespaces by duplicating well-known
application/OS trees with a scaling factor (Section V.B) — big-fanout
directories included, since those defeat namespace-based partitioning.
These builders do the same against our VFS: each template describes one
application's on-disk tree shape; :func:`populate_namespace` cycles
templates with a duplication suffix until the requested file count.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fs.vfs import VirtualFileSystem


@dataclass(frozen=True)
class AppTemplate:
    """Shape of one application's install tree.

    ``fanout`` files per directory and ``dirs`` directories; file sizes
    are log-uniform in [min_size, max_size] with ``big_file_fraction`` of
    files boosted into the multi-MB range (so size-range queries like the
    paper's ``size > 16MB`` have non-trivial answers).
    """

    name: str
    dirs: int
    fanout: int
    extensions: Tuple[str, ...]
    min_size: int = 128
    max_size: int = 512 * 1024
    big_file_fraction: float = 0.02
    big_min_size: int = 4 * 1024**2
    big_max_size: int = 128 * 1024**2

    @property
    def files(self) -> int:
        """Files one instance of this template creates."""
        return self.dirs * self.fanout


APP_TEMPLATES: Dict[str, AppTemplate] = {
    "firefox": AppTemplate("firefox", dirs=40, fanout=25,
                           extensions=("js", "so", "html", "png", "dat")),
    "openoffice": AppTemplate("openoffice", dirs=60, fanout=30,
                              extensions=("xml", "so", "odt", "ttf", "dat")),
    "linux-src": AppTemplate("linux-src", dirs=120, fanout=40,
                             extensions=("c", "h", "S", "txt", "o"),
                             max_size=64 * 1024, big_file_fraction=0.005),
    # Analytics-style big-fanout directory (Section III: enormous numbers
    # of files in one directory).
    "logs": AppTemplate("logs", dirs=4, fanout=600,
                        extensions=("log",), min_size=1024,
                        max_size=8 * 1024**2, big_file_fraction=0.05),
}


def populate_app_tree(vfs: VirtualFileSystem, root: str, template: AppTemplate,
                      seed: int = 0, pid: int = -1, uid: int = 0) -> List[str]:
    """Materialize one template instance under ``root``; returns paths."""
    # Stable across processes (builtin str hashing is randomized, which
    # would make "the same dataset" differ from run to run).
    rng = random.Random(seed ^ zlib.crc32(template.name.encode("utf-8")))
    vfs.mkdir(root, parents=True, uid=uid)
    paths: List[str] = []
    for d in range(template.dirs):
        dir_path = f"{root}/d{d:04d}"
        vfs.mkdir(dir_path, uid=uid)
        for f in range(template.fanout):
            ext = template.extensions[f % len(template.extensions)]
            path = f"{dir_path}/{template.name}{f:05d}.{ext}"
            if rng.random() < template.big_file_fraction:
                size = rng.randint(template.big_min_size, template.big_max_size)
            else:
                # Log-uniform: most files small, a long tail.
                lo, hi = template.min_size, template.max_size
                size = int(lo * (hi / lo) ** rng.random())
            vfs.write_file(path, size, pid=pid, uid=uid)
            paths.append(path)
    return paths


def populate_namespace(vfs: VirtualFileSystem, total_files: int,
                       templates: Optional[Sequence[AppTemplate]] = None,
                       seed: int = 0, pid: int = -1) -> List[str]:
    """Duplicate templates with a scaling suffix until ``total_files``.

    This is the paper's dataset construction: representative application
    trees copied with a scaling factor.  Returns all file paths created.
    """
    chosen = list(templates) if templates is not None else list(APP_TEMPLATES.values())
    paths: List[str] = []
    copy = 0
    while len(paths) < total_files:
        template = chosen[copy % len(chosen)]
        root = f"/data/copy{copy:04d}/{template.name}"
        created = populate_app_tree(vfs, root, template, seed=seed + copy, pid=pid)
        remaining = total_files - len(paths)
        if len(created) > remaining:
            for path in created[remaining:]:
                vfs.unlink(path, pid=pid)
            created = created[:remaining]
        paths.extend(created)
        copy += 1
    return paths
