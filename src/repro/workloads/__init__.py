"""Workload and dataset generators.

The paper's datasets (application file sets with measured overlaps,
compile traces of Thrift/Git/Linux, OS-image namespaces scaled by
duplication, PostMark) are not shippable, so this subpackage generates
synthetic equivalents whose *statistics* match what the paper reports —
Table I's pairwise overlap counts exactly, Table II's graph shapes
approximately (vertex counts exact, edges/weights close), and PostMark's
published parameters (50 000 files, 200 subdirectories).
"""

from repro.workloads.apps import (
    GIT_SPEC,
    LINUX_SPEC,
    THRIFT_SPEC,
    CompileApplication,
    CompileAppSpec,
    scaled_spec,
    table1_file_sets,
    table1_overlap_matrix,
)
from repro.workloads.datasets import populate_app_tree, populate_namespace
from repro.workloads.impressions import ImpressionsConfig, generate_impressions
from repro.workloads.mixed import MixedWorkloadConfig, mixed_stream
from repro.workloads.postmark import PostMarkConfig, PostMarkReport, run_postmark
from repro.workloads.replay import ReplayStats, replay_trace
from repro.workloads.tracegen import (
    grouped_update_requests,
    partition_files,
    random_update_requests,
)
from repro.workloads.zipf import ZipfSampler, zipf_update_requests

__all__ = [
    "GIT_SPEC",
    "LINUX_SPEC",
    "THRIFT_SPEC",
    "CompileApplication",
    "CompileAppSpec",
    "scaled_spec",
    "table1_file_sets",
    "table1_overlap_matrix",
    "populate_app_tree",
    "populate_namespace",
    "MixedWorkloadConfig",
    "mixed_stream",
    "PostMarkConfig",
    "PostMarkReport",
    "run_postmark",
    "grouped_update_requests",
    "partition_files",
    "random_update_requests",
    "ImpressionsConfig",
    "generate_impressions",
    "ReplayStats",
    "replay_trace",
    "ZipfSampler",
    "zipf_update_requests",
]
