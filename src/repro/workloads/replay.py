"""Replay an access trace against a live Propeller deployment.

Takes the event stream a :class:`~repro.core.trace.AccessEvent` source
produces (a :class:`~repro.workloads.apps.CompileApplication`, a parsed
trace file from :mod:`repro.core.traceio`, or anything else) and acts it
out on the service's VFS: files are created on first touch, reads open
and close them, writes append and trigger inline indexing.  The client's
File Access Management sees exactly the open/close pattern the original
application produced, so ACGs and placement come out the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Set

from repro.cluster.client import PropellerClient
from repro.cluster.service import PropellerService
from repro.core.trace import AccessEvent
from repro.fs.vfs import OpenMode


@dataclass
class ReplayStats:
    """What a replay did."""

    events: int = 0
    files_created: int = 0
    reads: int = 0
    writes: int = 0
    index_updates: int = 0
    processes: int = 0


def replay_trace(service: PropellerService, client: PropellerClient,
                 events: Iterable[AccessEvent],
                 path_of: Callable[[int], str],
                 write_bytes: int = 2048,
                 index_on_write: bool = True,
                 finish_processes: bool = True) -> ReplayStats:
    """Act out ``events`` on the service's VFS; returns statistics.

    ``path_of`` maps trace file ids to namespace paths (directories are
    created as needed).  With ``index_on_write`` every write also issues
    an inline file-indexing request — the Propeller deployment pattern.
    Events must arrive in nondecreasing time order per process (what all
    generators in this package produce).
    """
    vfs = service.vfs
    stats = ReplayStats()
    seen_pids: Set[int] = set()
    made_dirs: Set[str] = set()
    for event in events:
        stats.events += 1
        seen_pids.add(event.pid)
        path = path_of(event.file_id)
        parent = path.rsplit("/", 1)[0] or "/"
        if parent not in made_dirs:
            vfs.mkdir(parent, parents=True)
            made_dirs.add(parent)
        if not vfs.exists(path):
            stats.files_created += 1
            if event.write:
                # The process genuinely creates this file: its write-open
                # is the trace event itself.
                vfs.write_file(path, write_bytes, pid=event.pid)
            else:
                # A read of a file that predates the trace: materialize
                # it as pre-existing (system pid, invisible to causality)
                # and replay the read.
                vfs.write_file(path, write_bytes, pid=-1)
                fd = vfs.open(path, OpenMode.READ, pid=event.pid)
                vfs.close(fd)
                stats.reads += 1
            if index_on_write:
                client.index_path(path, pid=event.pid)
                stats.index_updates += 1
            continue
        if event.write:
            fd = vfs.open(path, OpenMode.WRITE, pid=event.pid)
            vfs.write(fd, write_bytes)
            vfs.close(fd)
            stats.writes += 1
            if index_on_write:
                client.index_path(path, pid=event.pid)
                stats.index_updates += 1
        else:
            fd = vfs.open(path, OpenMode.READ, pid=event.pid)
            vfs.close(fd)
            stats.reads += 1
    client.flush_updates()
    if finish_processes:
        for pid in sorted(seen_pids):
            client.access_manager.process_finished(pid)
        client.flush_acg()
    stats.processes = len(seen_pids)
    return stats
