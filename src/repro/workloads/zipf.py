"""Zipf-skewed access streams.

Real file accesses are heavily skewed — a few hot files absorb most of
the traffic.  Uniform streams (``random_update_requests``) understate
cache effectiveness; these generators provide the skewed counterpart for
ablations and stress tests.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class ZipfSampler:
    """Samples ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^s.

    Uses an exact inverse-CDF table (fine for the n ≤ 10^6 range the
    workloads need).
    """

    def __init__(self, n: int, s: float = 1.0, seed: int = 0) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1: {n}")
        if s < 0:
            raise ValueError(f"s must be >= 0: {s}")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        cumulative: List[float] = []
        total = 0.0
        for k in range(n):
            total += 1.0 / (k + 1) ** s
            cumulative.append(total)
        self._cdf = [c / total for c in cumulative]

    def sample(self) -> int:
        """Draw one rank (0 = hottest)."""
        return bisect.bisect_left(self._cdf, self._rng.random())

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` ranks."""
        return [self.sample() for _ in range(count)]


def zipf_update_requests(files: Sequence[T], n_updates: int, s: float = 1.0,
                         seed: int = 0) -> List[T]:
    """Zipf-skewed update targets over ``files`` (rank 0 = hottest).

    A deterministic shuffle decouples hotness from list order, so "the
    first file" isn't always the hot one.
    """
    order = list(range(len(files)))
    random.Random(seed ^ 0x5EED).shuffle(order)
    sampler = ZipfSampler(len(files), s=s, seed=seed)
    return [files[order[rank]] for rank in sampler.sample_many(n_updates)]
