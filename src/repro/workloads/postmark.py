"""PostMark (Katcher 1997) — the raw-I/O benchmark of Table VI.

Three phases against a :class:`~repro.fs.passthrough.ProfiledFS`:

1. **Create** — ``files`` files spread over ``subdirs`` subdirectories
   with random sizes in [min_size, max_size];
2. **Transactions** — a mix of read / append / create / delete
   operations on random files;
3. **Delete** — unlink everything that remains.

Reports the numbers Table VI quotes: files created per second (creation
phase), read/write throughput over the whole run, and total (virtual)
time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.fs.passthrough import ProfiledFS
from repro.fs.vfs import OpenMode


@dataclass(frozen=True)
class PostMarkConfig:
    """Knobs mirroring PostMark's config file (paper values by default)."""

    files: int = 50_000
    subdirs: int = 200
    min_size: int = 500
    max_size: int = 9_770
    transactions: int = 20_000
    read_block: int = 4096
    read_bias: float = 0.5      # read vs append inside a transaction
    create_bias: float = 0.5    # create vs delete inside a transaction
    seed: int = 42


@dataclass
class PostMarkReport:
    """Measured results for one run."""

    fs_name: str
    files_created: int
    creation_seconds: float
    transaction_seconds: float
    deletion_seconds: float
    bytes_read: int
    bytes_written: int
    total_seconds: float

    @property
    def files_created_per_second(self) -> float:
        """Creation-phase throughput (Table VI's headline column)."""
        return self.files_created / self.creation_seconds if self.creation_seconds else 0.0

    @property
    def read_throughput(self) -> float:
        """Bytes read per simulated second over the whole run."""
        return self.bytes_read / self.total_seconds if self.total_seconds else 0.0

    @property
    def write_throughput(self) -> float:
        """Bytes written per simulated second over the whole run."""
        return self.bytes_written / self.total_seconds if self.total_seconds else 0.0


def run_postmark(pfs: ProfiledFS, config: PostMarkConfig = PostMarkConfig(),
                 root: str = "/postmark") -> PostMarkReport:
    """Run the benchmark; all costs land on the ProfiledFS's clock."""
    rng = random.Random(config.seed)
    clock = pfs.clock
    pfs.mkdir(root, parents=True)
    for d in range(config.subdirs):
        pfs.mkdir(f"{root}/s{d:03d}")

    bytes_read = 0
    bytes_written = 0
    next_file = 0
    live: List[str] = []

    def create_one() -> None:
        nonlocal next_file, bytes_written
        path = f"{root}/s{next_file % config.subdirs:03d}/pm{next_file:07d}"
        next_file += 1
        size = rng.randint(config.min_size, config.max_size)
        fd = pfs.open(path, OpenMode.WRITE, create=True)
        pfs.write(fd, size)
        pfs.close(fd)
        bytes_written += size
        live.append(path)

    start = clock.now()
    for _ in range(config.files):
        create_one()
    created = len(live)
    creation_seconds = clock.now() - start

    start = clock.now()
    for _ in range(config.transactions):
        if not live:
            create_one()
            continue
        if rng.random() < 0.5:
            # Read or append an existing file.
            path = live[rng.randrange(len(live))]
            if rng.random() < config.read_bias:
                fd = pfs.open(path, OpenMode.READ)
                bytes_read += pfs.read(fd, config.read_block)
                pfs.close(fd)
            else:
                size = rng.randint(config.min_size, config.max_size)
                fd = pfs.open(path, OpenMode.WRITE)
                pfs.write(fd, size)
                pfs.close(fd)
                bytes_written += size
        else:
            # Create or delete.
            if rng.random() < config.create_bias:
                create_one()
                created += 1
            else:
                victim = rng.randrange(len(live))
                live[victim], live[-1] = live[-1], live[victim]
                pfs.unlink(live.pop())
    transaction_seconds = clock.now() - start

    start = clock.now()
    for path in live:
        pfs.unlink(path)
    live.clear()
    deletion_seconds = clock.now() - start

    total = creation_seconds + transaction_seconds + deletion_seconds
    return PostMarkReport(
        fs_name=pfs.profile.name,
        files_created=created,
        creation_seconds=creation_seconds,
        transaction_seconds=transaction_seconds,
        deletion_seconds=deletion_seconds,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        total_seconds=total,
    )
