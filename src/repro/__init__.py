"""repro — a full reproduction of *Propeller: A Scalable Real-Time
File-Search Service in Distributed Systems* (Xu, Jiang, Tian, Huang;
ICDCS 2014).

Quickstart::

    from repro import PropellerService, IndexKind

    service = PropellerService(num_index_nodes=4)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])

    service.vfs.mkdir("/data")
    service.vfs.write_file("/data/big.bin", 64 * 1024**2, pid=1)
    client.index_path("/data/big.bin", pid=1)
    client.flush_updates()

    print(client.search("size>16m"))       # -> ['/data/big.bin']

Subpackages:

* :mod:`repro.core` — Access-Causality Graphs and partitioning (the
  paper's contribution);
* :mod:`repro.cluster` — Master Node / Index Nodes / client / service;
* :mod:`repro.indexstructures` — B+tree, extendible hash, K-D tree;
* :mod:`repro.query` — query language, planner, executor;
* :mod:`repro.fs` — virtual file system + access interception;
* :mod:`repro.sim` — the discrete-event cost-model substrate;
* :mod:`repro.baselines` — MiniSQL (MySQL analog), crawler (Spotlight
  analog), brute force;
* :mod:`repro.workloads` / :mod:`repro.metrics` — generators and
  measurement for every table and figure in the paper.
"""

from repro.cluster import PropellerClient, PropellerService
from repro.core import AccessCausalityGraph, PartitioningPolicy
from repro.indexstructures import IndexKind
from repro.query import parse_query

__version__ = "1.0.0"

__all__ = [
    "PropellerClient",
    "PropellerService",
    "AccessCausalityGraph",
    "PartitioningPolicy",
    "IndexKind",
    "parse_query",
    "__version__",
]
