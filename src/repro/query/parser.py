"""Query text parsing.

Grammar (both the API form and the query-directory form use it)::

    query    := disjunct
    disjunct := conjunct ('|' conjunct)*
    conjunct := term ('&' term)*
    term     := '!' term | '(' disjunct ')' | keyword | compare
    keyword  := 'keyword' ':' IDENT
    compare  := ATTR OP literal
    OP       := < <= == != >= >
    literal  := NUMBER [size-unit | time-unit] | STRING

Size units: k/kb, m/mb, g/gb, t/tb (powers of 1024).  Time units turn the
number into a :class:`~repro.query.ast.RelativeAge`: s/sec, min, h/hour,
day, week.  Examples from the paper: ``size>1g & mtime<1day``,
``keyword:firefox & mtime<1week``, ``size>16mb``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import QueryError
from repro.query.ast import And, Compare, Keyword, Not, Or, Predicate, RelativeAge

_SIZE_UNITS = {
    "b": 1,
    "k": 1024, "kb": 1024,
    "m": 1024**2, "mb": 1024**2,
    "g": 1024**3, "gb": 1024**3,
    "t": 1024**4, "tb": 1024**4,
}
_TIME_UNITS = {
    "s": 1.0, "sec": 1.0, "second": 1.0, "seconds": 1.0,
    "min": 60.0, "minute": 60.0, "minutes": 60.0,
    "h": 3600.0, "hour": 3600.0, "hours": 3600.0,
    "day": 86400.0, "days": 86400.0,
    "week": 604800.0, "weeks": 604800.0,
}

_TOKEN_RE = re.compile(r"""
    \s*(?:
      (?P<op><=|>=|==|!=|<|>)
    | (?P<punct>[()&|!:])
    | (?P<number>-?\d+(?:\.\d+)?)(?P<unit>[a-zA-Z]*)
    | (?P<word>[A-Za-z_][A-Za-z0-9_.\-]*)
    | (?P<string>"[^"]*"|'[^']*')
    )""", re.VERBOSE)


def _tokenize(text: str) -> List[Tuple[str, object]]:
    tokens: List[Tuple[str, object]] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QueryError(f"cannot tokenize query at: {text[pos:]!r}")
        pos = match.end()
        if match.group("op"):
            tokens.append(("op", match.group("op")))
        elif match.group("punct"):
            tokens.append(("punct", match.group("punct")))
        elif match.group("number"):
            tokens.append(("number", (float(match.group("number")),
                                      match.group("unit").lower())))
        elif match.group("word"):
            tokens.append(("word", match.group("word")))
        else:
            tokens.append(("string", match.group("string")[1:-1]))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, object]], source: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> Optional[Tuple[str, object]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> Tuple[str, object]:
        token = self.peek()
        if token is None:
            raise QueryError(f"unexpected end of query: {self.source!r}")
        self.pos += 1
        return token

    def expect(self, kind: str, value: object = None) -> object:
        token_kind, token_value = self.take()
        if token_kind != kind or (value is not None and token_value != value):
            raise QueryError(
                f"expected {value or kind} in {self.source!r}, got {token_value!r}"
            )
        return token_value

    def parse(self) -> Predicate:
        predicate = self.disjunct()
        if self.peek() is not None:
            raise QueryError(f"trailing tokens in query: {self.source!r}")
        return predicate

    def disjunct(self) -> Predicate:
        terms = [self.conjunct()]
        while self.peek() == ("punct", "|"):
            self.take()
            terms.append(self.conjunct())
        return terms[0] if len(terms) == 1 else Or(tuple(terms))

    def conjunct(self) -> Predicate:
        terms = [self.term()]
        while self.peek() == ("punct", "&"):
            self.take()
            terms.append(self.term())
        return terms[0] if len(terms) == 1 else And(tuple(terms))

    def term(self) -> Predicate:
        token = self.peek()
        if token == ("punct", "!"):
            self.take()
            return Not(self.term())
        if token == ("punct", "("):
            self.take()
            inner = self.disjunct()
            self.expect("punct", ")")
            return inner
        kind, value = self.take()
        if kind != "word":
            raise QueryError(f"expected attribute or keyword in {self.source!r}")
        if self.peek() == ("punct", ":"):
            if value != "keyword":
                raise QueryError(f"only 'keyword:' terms use ':' ({self.source!r})")
            self.take()
            term_kind, term_value = self.take()
            if term_kind not in ("word", "string", "number"):
                raise QueryError(f"bad keyword term in {self.source!r}")
            if term_kind == "number":
                number, unit = term_value  # type: ignore[misc]
                term_value = f"{number:g}{unit}"
            return Keyword(str(term_value).lower())
        op = self.expect("op")
        literal = self._literal(str(value))
        return Compare(str(value), str(op), literal)

    def _literal(self, attr: str):
        kind, value = self.take()
        if kind == "string":
            return value
        if kind == "word":
            return value
        if kind == "number":
            number, unit = value  # type: ignore[misc]
            if not unit:
                return number if number != int(number) else int(number)
            if unit in _SIZE_UNITS:
                return int(number * _SIZE_UNITS[unit])
            if unit in _TIME_UNITS:
                return RelativeAge(number * _TIME_UNITS[unit])
            raise QueryError(f"unknown unit {unit!r} on attribute {attr!r}")
        raise QueryError(f"bad literal for attribute {attr!r}")


def parse_query(text: str) -> Predicate:
    """Parse the API query form, e.g. ``"size>1g & mtime<1day"``."""
    if not text or not text.strip():
        raise QueryError("empty query")
    return _Parser(_tokenize(text), text).parse()


def parse_query_directory(path: str) -> Tuple[str, Predicate]:
    """Parse a dynamic query-directory path like ``/foo/bar/?size>1m``.

    Returns (scope_directory, predicate); the scope is the path prefix the
    search is restricted to.
    """
    if "?" not in path:
        raise QueryError(f"not a query directory (no '?'): {path!r}")
    prefix, _, query = path.partition("?")
    scope = prefix.rstrip("/") or "/"
    return scope, parse_query(query)
