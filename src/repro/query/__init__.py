"""File-search query engine.

Propeller's File Query Engine accepts searches either through a file-search
API or through dynamic query-directories in the namespace — e.g. listing
``/foo/bar/?size>1m`` runs the query (Section IV).  This subpackage parses
both forms into a predicate AST (:mod:`ast`), plans which per-ACG index to
use (:mod:`planner`), and executes plans against an Index Node's index
table (:mod:`executor`).
"""

from repro.query.ast import (
    And,
    Compare,
    Keyword,
    Not,
    Or,
    Predicate,
    RelativeAge,
    attributes_referenced,
    matches,
)
from repro.query.canonical import canonicalize, is_time_dependent
from repro.query.executor import AttributeStore, execute, tokenize_path
from repro.query.parser import parse_query, parse_query_directory
from repro.query.planner import IndexSpec, Plan, plan_query
from repro.query.summary import (PartitionSummary, SummarySnapshot,
                                 summary_may_match)

__all__ = [
    "And",
    "Compare",
    "Keyword",
    "Not",
    "Or",
    "Predicate",
    "RelativeAge",
    "attributes_referenced",
    "matches",
    "AttributeStore",
    "execute",
    "tokenize_path",
    "parse_query",
    "parse_query_directory",
    "IndexSpec",
    "Plan",
    "plan_query",
    "canonicalize",
    "is_time_dependent",
    "PartitionSummary",
    "SummarySnapshot",
    "summary_may_match",
]
