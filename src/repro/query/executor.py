"""Plan execution against one ACG's indices — and the cluster-side
scatter-gather that stitches per-node answers into one result.

The per-ACG executor runs on an Index Node: it walks the chosen access
path to get candidate file ids, then applies the full predicate as a
residual filter against the ACG's attribute store.  Results are therefore
always exact — an over-approximate index never yields false positives.

The scatter-gather runs on the client: search legs fan out to every Index
Node in parallel and, when a leg fails transiently (node down, RPC
timeout, injected disk error), the query **degrades** instead of dying —
the surviving legs' results come back in a :class:`FanoutOutcome` whose
``degraded`` flag is set and whose ``unreachable`` map names exactly
which partitions on which nodes the answer is missing (the tail-tolerant
partial-results semantic partition-parallel search needs).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, FrozenSet, Iterable, Iterator, List,
                    Mapping, Optional, Sequence, Set, Tuple)

from repro.errors import DiskIOError, NodeDown, QueryError, RpcTimeout, UnknownIndexName
from repro.indexstructures.base import Index
from repro.indexstructures.postings import PostingList, intersect_all
from repro.query.ast import And, Keyword, Predicate, conjuncts, matches
from repro.query.planner import Plan

# Failures that degrade a search leg instead of failing the whole query.
# Anything else (parse errors, unknown index names, handler bugs) is a
# caller mistake and still propagates.
DEGRADABLE_ERRORS = (NodeDown, RpcTimeout, DiskIOError)

_TOKEN_SPLIT = re.compile(r"[^a-z0-9]+")


def tokenize_path(path: str) -> FrozenSet[str]:
    """Keywords of a path: lower-cased alphanumeric runs, plus stem splits.

    ``/home/john/.mozilla/prefs.js`` → {home, john, mozilla, prefs, js}.
    This mirrors the paper's MySQL schema, which extracts keywords from
    the full file path.
    """
    return frozenset(t for t in _TOKEN_SPLIT.split(path.lower()) if t)


class AttributeStore:
    """Per-ACG ground truth: file id → attributes + path keywords."""

    def __init__(self) -> None:
        self._attrs: Dict[int, Dict[str, Any]] = {}
        self._keywords: Dict[int, FrozenSet[str]] = {}
        self._bytes = 0  # running estimated_bytes: 64/entry + 16/attr

    def __len__(self) -> int:
        return len(self._attrs)

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._attrs

    def put(self, file_id: int, attrs: Mapping[str, Any], path: Optional[str] = None) -> None:
        """Insert/refresh one file's attributes (and path keywords)."""
        entry = self._attrs.get(file_id)
        if entry is None:
            entry = self._attrs[file_id] = {}
            self._bytes += 64
        before = len(entry)
        entry.update(attrs)
        if path is not None:
            entry["path"] = path
            self._keywords[file_id] = tokenize_path(path)
        self._bytes += 16 * (len(entry) - before)

    def drop(self, file_id: int) -> None:
        """Forget one file entirely."""
        entry = self._attrs.pop(file_id, None)
        if entry is not None:
            self._bytes -= 64 + 16 * len(entry)
        self._keywords.pop(file_id, None)

    def attrs(self, file_id: int) -> Dict[str, Any]:
        """The file's attribute dict ({} if unknown)."""
        return self._attrs.get(file_id, {})

    def keywords(self, file_id: int) -> FrozenSet[str]:
        """The file's path keywords (empty set if unknown)."""
        return self._keywords.get(file_id, frozenset())

    def file_ids(self) -> Iterator[int]:
        """Iterate every known file id."""
        return iter(self._attrs)

    def estimated_bytes(self) -> int:
        """Rough serialized size, used by the page-cache cost model.

        O(1): a running counter maintained by put/drop — this runs
        inside every residency check, so a per-call sweep over every
        entry would dominate large partitions.
        """
        return self._bytes


def _candidates(plan: Plan, indexes: Mapping[str, Index],
                store: AttributeStore) -> Iterable[int]:
    if plan.access == "scan":
        return list(store.file_ids())
    if plan.index_name is None or plan.index_name not in indexes:
        raise UnknownIndexName(str(plan.index_name))
    index = indexes[plan.index_name]
    if plan.access in ("hash_eq", "keyword"):
        return index.get(plan.key)
    if plan.access == "btree_range":
        return [value for _, value in index.range(  # type: ignore[attr-defined]
            plan.low, plan.high,
            include_low=plan.include_low, include_high=plan.include_high)]
    if plan.access == "kdtree_range":
        return [value for _, value in index.range(plan.lows, plan.highs)]  # type: ignore[attr-defined]
    raise QueryError(f"unknown access path: {plan.access!r}")


def _keyword_posting_candidates(plan: Plan, predicate: Predicate,
                                indexes: Mapping[str, Index]
                                ) -> Optional[PostingList]:
    """AND the posting lists of every top-level keyword conjunct.

    The legacy keyword path probes one term and leaves the rest to the
    per-doc residual filter — each candidate pays a membership test per
    remaining keyword.  Here every keyword that is a mandatory conjunct
    (``conjuncts`` only flattens top-level ANDs, so each is required)
    narrows the candidate set up front with a vectorized bitmap AND.
    Returns None when the predicate has no top-level keyword conjuncts
    (e.g. a disjunctive branch plan) — the caller falls back to the
    legacy probe.  Exactness is untouched either way: candidates still
    run through the full residual filter.
    """
    terms = [c.term for c in conjuncts(predicate) if isinstance(c, Keyword)]
    if not terms:
        return None
    index = indexes[plan.index_name]
    return intersect_all(
        PostingList.from_iterable(index.get(term)) for term in terms)


def execute(plan: Plan, predicate: Predicate, indexes: Mapping[str, Index],
            store: AttributeStore, now: float,
            use_postings: bool = False) -> Set[int]:
    """Run one plan; return the exact set of matching file ids."""
    candidates: Iterable[int]
    if (use_postings and plan.access == "keyword"
            and plan.index_name is not None and plan.index_name in indexes):
        postings = _keyword_posting_candidates(plan, predicate, indexes)
        candidates = postings if postings is not None \
            else _candidates(plan, indexes, store)
    else:
        candidates = _candidates(plan, indexes, store)
    result: Set[int] = set()
    for file_id in candidates:
        if file_id in result or file_id not in store:
            continue
        if matches(predicate, store.attrs(file_id), store.keywords(file_id), now):
            result.add(file_id)
    return result


def execute_plans(plans: Iterable[Plan], predicate: Predicate,
                  indexes: Mapping[str, Index], store: AttributeStore,
                  now: float, use_postings: bool = False) -> Set[int]:
    """Union of several plans (disjunctive queries), still exact: every
    candidate is re-checked against the full predicate."""
    result: Set[int] = set()
    for plan in plans:
        result |= execute(plan, predicate, indexes, store, now,
                          use_postings=use_postings)
    return result


# -- degraded scatter-gather ---------------------------------------------------


@dataclass
class FanoutOutcome:
    """What a partition-parallel search fan-out actually achieved.

    ``results`` holds every per-node answer that arrived; ``unreachable``
    maps each failed node to the partition (ACG) ids its leg was asked to
    search, and ``errors`` keeps the error text per failed node.  A query
    is ``degraded`` exactly when at least one leg failed — the caller got
    a correct but possibly incomplete answer and can name what is
    missing.

    Epoch-stamped legs add two routing-health signals: ``stale`` maps a
    node to the ACGs it declined because it no longer owns them (the
    client should refresh its route table and retry those partitions),
    and ``node_epochs`` records each answering node's routing epoch so a
    behind-the-times client can notice the cluster has moved on.
    """

    results: List[Any] = field(default_factory=list)
    unreachable: Dict[str, List[int]] = field(default_factory=dict)
    errors: Dict[str, str] = field(default_factory=dict)
    stale: Dict[str, List[int]] = field(default_factory=dict)
    node_epochs: Dict[str, int] = field(default_factory=dict)
    # Partitions the owning node *validated* as skippable (summary
    # watermark matched, nothing pending) — these count as served even
    # though no SearchResult came back for them.
    pruned_ok: Set[int] = field(default_factory=set)

    @property
    def degraded(self) -> bool:
        return bool(self.unreachable)

    @property
    def unreachable_partitions(self) -> List[int]:
        """Every partition id the answer is missing, sorted."""
        return sorted(acg for acgs in self.unreachable.values() for acg in acgs)

    @property
    def stale_partitions(self) -> List[int]:
        """Every partition a node declined as not-owned, sorted."""
        return sorted(acg for acgs in self.stale.values() for acg in acgs)

    def max_node_epoch(self) -> int:
        """The highest routing epoch any answering node reported."""
        return max(self.node_epochs.values(), default=0)


def scatter_gather(clock, routing: Mapping[str, Sequence[int]],
                   call: Callable[[str], Any]) -> FanoutOutcome:
    """Fan one search out to every node in ``routing``, tolerating legs.

    ``call(node)`` performs one node's search RPC (retries included — the
    RPC layer owns those); legs run as logically concurrent work on the
    virtual clock, so the caller waits for the slowest leg, including a
    failed leg's timeout burn.  Legs that still fail with a transient
    error after retries are recorded against the partitions they covered
    instead of aborting the fan-out.
    """
    nodes = sorted(routing)
    outcome = FanoutOutcome()

    def leg(node: str):
        try:
            return node, call(node), None
        except DEGRADABLE_ERRORS as exc:
            return node, None, exc

    for node, batch, error in clock.parallel(
            [(lambda n=n: leg(n)) for n in nodes]):
        if error is not None:
            outcome.unreachable[node] = sorted(routing[node])
            outcome.errors[node] = f"{type(error).__name__}: {error}"
        elif hasattr(batch, "results") and hasattr(batch, "not_owned"):
            # An epoch-stamped SearchReply: unpack results and record the
            # routing-health signals the client's retry round consumes.
            outcome.results.extend(batch.results)
            outcome.node_epochs[node] = batch.epoch
            if batch.not_owned:
                outcome.stale[node] = sorted(batch.not_owned)
            outcome.pruned_ok.update(getattr(batch, "pruned_ok", ()))
        else:
            outcome.results.extend(batch)
    return outcome
