"""Predicate AST for file-search queries.

Leaves compare a file attribute against a constant (:class:`Compare`) or
test a path keyword (:class:`Keyword`); interior nodes combine with
And/Or/Not.  Time-relative constants ("mtime < 1 day") are kept symbolic
as :class:`RelativeAge` and resolved against *now* at evaluation/planning
time, because an index lookup at t0 and at t1 must see different absolute
bounds.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterator, Sequence, Set, Tuple, Union

from repro.errors import QueryError

_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
    ">=": operator.ge,
    ">": operator.gt,
}


@dataclass(frozen=True)
class RelativeAge:
    """An age in seconds, resolved to an absolute mtime bound at runtime.

    ``mtime < RelativeAge(86400)`` reads "modified within the last day":
    the *age* (now − mtime) is under 86 400 s, i.e. mtime > now − 86 400.
    """

    seconds: float

    def cutoff(self, now: float) -> float:
        """The absolute mtime bound this age means at time ``now``."""
        return now - self.seconds


class Predicate:
    """Base class; use the concrete subclasses below."""

    def __and__(self, other: "Predicate") -> "And":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Compare(Predicate):
    """attribute <op> constant."""

    attr: str
    op: str
    value: Union[int, float, str, RelativeAge]

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise QueryError(f"unknown comparison operator: {self.op!r}")

    def resolved(self, now: float) -> "Compare":
        """Translate a RelativeAge bound into an absolute comparison."""
        if not isinstance(self.value, RelativeAge):
            return self
        cutoff = self.value.cutoff(now)
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                   "==": "==", "!=": "!="}[self.op]
        return Compare(self.attr, flipped, cutoff)


@dataclass(frozen=True)
class Keyword(Predicate):
    """True when the term appears among the file's path keywords."""

    term: str


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction: every child must match."""
    children: Tuple[Predicate, ...]


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction: any child may match."""
    children: Tuple[Predicate, ...]


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of the child predicate."""
    child: Predicate


def matches(predicate: Predicate, attrs: Dict[str, Any],
            keywords: FrozenSet[str], now: float) -> bool:
    """Evaluate a predicate against one file's attributes + keywords.

    Missing attributes never match a comparison (matching SQL NULL
    semantics under conjunction).
    """
    if isinstance(predicate, Compare):
        resolved = predicate.resolved(now)
        value = attrs.get(resolved.attr)
        if value is None:
            return False
        try:
            return _OPS[resolved.op](value, resolved.value)
        except TypeError:
            return False
    if isinstance(predicate, Keyword):
        return predicate.term in keywords
    if isinstance(predicate, And):
        return all(matches(c, attrs, keywords, now) for c in predicate.children)
    if isinstance(predicate, Or):
        return any(matches(c, attrs, keywords, now) for c in predicate.children)
    if isinstance(predicate, Not):
        return not matches(predicate.child, attrs, keywords, now)
    raise QueryError(f"unknown predicate node: {predicate!r}")


def attributes_referenced(predicate: Predicate) -> Set[str]:
    """All attribute names a predicate touches (keywords excluded)."""
    if isinstance(predicate, Compare):
        return {predicate.attr}
    if isinstance(predicate, Keyword):
        return set()
    if isinstance(predicate, (And, Or)):
        out: Set[str] = set()
        for child in predicate.children:
            out |= attributes_referenced(child)
        return out
    if isinstance(predicate, Not):
        return attributes_referenced(predicate.child)
    raise QueryError(f"unknown predicate node: {predicate!r}")


def conjuncts(predicate: Predicate) -> Iterator[Predicate]:
    """Flatten nested Ands into their top-level conjuncts."""
    if isinstance(predicate, And):
        for child in predicate.children:
            yield from conjuncts(child)
    else:
        yield predicate
