"""Predicate canonicalization.

Two predicates that mean the same thing — ``a & b`` vs ``b & a``, nested
vs flat conjunctions, duplicated terms — should produce the same cache
key, so the per-ACG result cache hits across syntactic variants.
:func:`canonicalize` rewrites a predicate into a normal form (flattened,
sorted, deduplicated And/Or); since every AST node is a frozen dataclass
the canonical predicate is itself hashable and serves directly as the
cache key.

:func:`is_time_dependent` spots predicates whose meaning shifts with the
evaluation clock (``mtime < 1 day`` keeps a symbolic
:class:`~repro.query.ast.RelativeAge` bound): their results cannot be
cached under a commit watermark alone, because the *same* quiescent
partition can legitimately answer differently at a later time.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import QueryError
from repro.query.ast import And, Compare, Keyword, Not, Or, Predicate


def _sort_key(predicate: Predicate) -> Tuple:
    """A deterministic total order over canonical predicates."""
    if isinstance(predicate, Compare):
        return ("compare", predicate.attr, predicate.op, repr(predicate.value))
    if isinstance(predicate, Keyword):
        return ("keyword", predicate.term)
    if isinstance(predicate, Not):
        return ("not",) + _sort_key(predicate.child)
    children = tuple(_sort_key(c) for c in predicate.children)  # type: ignore[union-attr]
    kind = "and" if isinstance(predicate, And) else "or"
    return (kind, children)


def canonicalize(predicate: Predicate) -> Predicate:
    """Normal form: flatten nested And/Or of the same kind, sort the
    children deterministically, drop duplicates, and collapse
    single-child combinators.  Semantics are preserved exactly."""
    if isinstance(predicate, (Compare, Keyword)):
        return predicate
    if isinstance(predicate, Not):
        return Not(canonicalize(predicate.child))
    if isinstance(predicate, (And, Or)):
        kind = type(predicate)
        flat = []
        for child in predicate.children:
            canon = canonicalize(child)
            if isinstance(canon, kind):
                flat.extend(canon.children)
            else:
                flat.append(canon)
        unique = []
        seen = set()
        for child in sorted(flat, key=_sort_key):
            key = _sort_key(child)
            if key not in seen:
                seen.add(key)
                unique.append(child)
        if len(unique) == 1:
            return unique[0]
        return kind(tuple(unique))
    raise QueryError(f"unknown predicate node: {predicate!r}")


def is_time_dependent(predicate: Predicate) -> bool:
    """Whether any comparison keeps a symbolic RelativeAge bound (and so
    resolves differently as the clock advances)."""
    from repro.query.ast import RelativeAge

    if isinstance(predicate, Compare):
        return isinstance(predicate.value, RelativeAge)
    if isinstance(predicate, Keyword):
        return False
    if isinstance(predicate, Not):
        return is_time_dependent(predicate.child)
    if isinstance(predicate, (And, Or)):
        return any(is_time_dependent(c) for c in predicate.children)
    raise QueryError(f"unknown predicate node: {predicate!r}")
