"""Query planning: pick the best index for a predicate.

Per ACG, the Index Node holds a table of named indices, each described by
an :class:`IndexSpec` (which attributes it covers and with which
structure).  The planner inspects the query's top-level conjuncts and
chooses one access path — hash for equality, B+tree for a 1-D range,
K-D tree for multi-attribute ranges, keyword-hash for keyword terms — and
leaves the full predicate as a residual filter.  Anything it cannot serve
from an index falls back to a scan of the ACG's file list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.indexstructures.base import IndexKind
from repro.query.ast import Compare, Keyword, Predicate, conjuncts

KEYWORD_ATTR = "keyword"


@dataclass(frozen=True)
class IndexSpec:
    """Declares one named index: which attributes it covers, and how.

    B+tree and hash indices cover exactly one attribute; a K-D tree covers
    ``len(attrs)`` numeric attributes.  A hash index over ``keyword``
    serves :class:`Keyword` predicates (one entry per path token).
    """

    name: str
    kind: IndexKind
    attrs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind in (IndexKind.BTREE, IndexKind.HASH) and len(self.attrs) != 1:
            raise QueryError(f"{self.kind.value} index must cover exactly one attribute")
        if self.kind is IndexKind.KDTREE and len(self.attrs) < 1:
            raise QueryError("kdtree index must cover at least one attribute")


@dataclass(frozen=True)
class Plan:
    """One access path plus bookkeeping for the executor.

    ``access`` is one of: ``scan``, ``hash_eq``, ``keyword``,
    ``btree_range``, ``kdtree_range``.
    """

    access: str
    index_name: Optional[str] = None
    key: object = None                      # hash_eq / keyword
    low: object = None                      # btree_range
    high: object = None
    include_low: bool = True
    include_high: bool = True
    lows: Tuple[Optional[float], ...] = ()  # kdtree_range
    highs: Tuple[Optional[float], ...] = ()

    def describe(self) -> str:
        """EXPLAIN-style one-liner for operators and tests."""
        if self.access == "scan":
            return "SCAN all files (residual filter only)"
        if self.access == "hash_eq":
            return f"HASH EQ {self.index_name}[{self.key!r}]"
        if self.access == "keyword":
            return f"KEYWORD {self.index_name}[{self.key!r}]"
        if self.access == "btree_range":
            lo = "-inf" if self.low is None else repr(self.low)
            hi = "+inf" if self.high is None else repr(self.high)
            lob = "[" if self.include_low else "("
            hib = "]" if self.include_high else ")"
            return f"BTREE RANGE {self.index_name} {lob}{lo}, {hi}{hib}"
        if self.access == "kdtree_range":
            parts = []
            for lo, hi in zip(self.lows, self.highs):
                if lo is None and hi is None:
                    parts.append("*")
                else:
                    lo_s = "-inf" if lo is None else f"{lo:g}"
                    hi_s = "+inf" if hi is None else f"{hi:g}"
                    parts.append(f"{lo_s}..{hi_s}")
            return f"KDTREE RANGE {self.index_name} ({', '.join(parts)})"
        return f"UNKNOWN ACCESS {self.access!r}"


_Bound = Tuple[Optional[object], bool, Optional[object], bool]  # low, incl, high, incl


def _merge_bounds(existing: _Bound, compare: Compare) -> _Bound:
    low, include_low, high, include_high = existing
    op, value = compare.op, compare.value
    if op == "==":
        candidates = [(value, True, value, True)]
    elif op in (">", ">="):
        candidates = [(value, op == ">=", None, True)]
    elif op in ("<", "<="):
        candidates = [(None, True, value, op == "<=")]
    else:  # '!=' is not index-servable as a range
        return existing
    new_low, new_incl_low, new_high, new_incl_high = candidates[0]
    if new_low is not None and (low is None or new_low > low):
        low, include_low = new_low, new_incl_low
    elif new_low is not None and new_low == low:
        include_low = include_low and new_incl_low
    if new_high is not None and (high is None or new_high < high):
        high, include_high = new_high, new_incl_high
    elif new_high is not None and new_high == high:
        include_high = include_high and new_incl_high
    return low, include_low, high, include_high


def plan_query(predicate: Predicate, specs: Sequence[IndexSpec], now: float) -> Plan:
    """Choose the best single access path for ``predicate``.

    Only top-level conjuncts are index-servable (Or/Not subtrees always go
    to the residual filter).  Preference order: hash equality > keyword >
    K-D tree multi-range > B+tree single range > scan.
    """
    equality: Dict[str, object] = {}
    bounds: Dict[str, _Bound] = {}
    compared_attrs: set = set()
    keywords: List[str] = []
    for term in conjuncts(predicate):
        if isinstance(term, Compare):
            resolved = term.resolved(now)
            compared_attrs.add(resolved.attr)
            if resolved.op == "==":
                equality.setdefault(resolved.attr, resolved.value)
            if resolved.op in ("<", "<=", ">", ">=", "=="):
                current = bounds.get(resolved.attr, (None, True, None, True))
                bounds[resolved.attr] = _merge_bounds(current, resolved)
        elif isinstance(term, Keyword):
            keywords.append(term.term)

    hash_specs = {s.attrs[0]: s for s in specs
                  if s.kind is IndexKind.HASH and s.attrs[0] != KEYWORD_ATTR}
    keyword_spec = next((s for s in specs
                         if s.kind is IndexKind.HASH and s.attrs[0] == KEYWORD_ATTR), None)
    btree_specs = {s.attrs[0]: s for s in specs if s.kind is IndexKind.BTREE}
    kdtree_specs = [s for s in specs if s.kind is IndexKind.KDTREE]

    for attr, value in equality.items():
        if attr in hash_specs:
            return Plan("hash_eq", index_name=hash_specs[attr].name, key=value)
    if keywords and keyword_spec is not None:
        return Plan("keyword", index_name=keyword_spec.name, key=keywords[0])

    # A K-D index is *partial*: files missing any covered attribute are
    # not in it.  It is only a sound access path when the query has a
    # conjunct on every covered attribute (a file missing one of them
    # cannot match the predicate anyway).
    best_kd: Optional[Tuple[int, IndexSpec]] = None
    for spec in kdtree_specs:
        if not all(attr in compared_attrs for attr in spec.attrs):
            continue
        covered = sum(1 for attr in spec.attrs if attr in bounds)
        if covered and (best_kd is None or covered > best_kd[0]):
            best_kd = (covered, spec)
    if best_kd is not None and best_kd[0] >= 1:
        spec = best_kd[1]
        lows = tuple(
            None if attr not in bounds or bounds[attr][0] is None
            else float(bounds[attr][0])  # type: ignore[arg-type]
            for attr in spec.attrs
        )
        highs = tuple(
            None if attr not in bounds or bounds[attr][2] is None
            else float(bounds[attr][2])  # type: ignore[arg-type]
            for attr in spec.attrs
        )
        if any(b is not None for b in lows + highs):
            return Plan("kdtree_range", index_name=spec.name, lows=lows, highs=highs)

    for attr, (low, incl_low, high, incl_high) in bounds.items():
        if attr in btree_specs and (low is not None or high is not None):
            return Plan("btree_range", index_name=btree_specs[attr].name,
                        low=low, high=high,
                        include_low=incl_low, include_high=incl_high)

    return Plan("scan")


def plan_query_set(predicate: Predicate, specs: Sequence[IndexSpec],
                   now: float) -> List[Plan]:
    """Plan a query as a *set* of access paths whose union covers it.

    A top-level disjunction whose every branch is individually indexable
    becomes one plan per branch (executed as a union, each filtered by
    the full predicate, so exactness is preserved); anything else falls
    back to the single best plan from :func:`plan_query`.
    """
    from repro.query.ast import Or

    if isinstance(predicate, Or):
        plans = [plan_query(child, specs, now) for child in predicate.children]
        if all(plan.access != "scan" for plan in plans):
            return plans
    return [plan_query(predicate, specs, now)]
