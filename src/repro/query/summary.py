"""Per-partition search summaries and the pruning satisfiability check.

Each ACG replica maintains a :class:`PartitionSummary` — a keyword Bloom
filter plus min/max *zone maps* over the numeric attributes its files
carry — updated incrementally as updates commit.  A frozen
:class:`SummarySnapshot` of it (stamped with the replica's commit
watermark) rides on heartbeats to the Master and from there to clients,
which call :func:`summary_may_match` to decide whether a search leg to
that partition can be skipped.

Safety contract — **false negatives must be impossible**:

* Every structure here is *over-approximate*.  Observation only widens
  (bits are set, zone bounds grow, attribute names accumulate); deletes
  leave the summary wide until an explicit deterministic rebuild.  A
  too-wide summary can only cost a wasted search leg.
* ``summary_may_match`` returns False only when **no file the summary
  covers can possibly satisfy the predicate** under the evaluation
  semantics of :func:`repro.query.ast.matches`.  Anything it cannot
  reason about precisely (negation, string comparisons, ``!=``) fails
  open (returns True → the leg is searched).
* Time-relative bounds get a directional rule.  The client decides at
  virtual time *t0* but the node evaluates at some *t1 ≥ t0*.  A
  resolved ``attr > now-age`` bound (from ``mtime < 1 day``) only
  *shrinks* its allowed set as the clock advances, so pruning on the
  summary's max is sound.  Resolved ``<``/``<=``/``==`` bounds from a
  RelativeAge *grow* or move their allowed set with time and must fail
  open.
* Freshness is enforced elsewhere: the client sends the snapshot's
  watermark with the fan-out, and the node re-validates (exact watermark
  match + no pending uncommitted updates) before honouring a skip — a
  stale snapshot therefore fails open at the node, never silently drops
  results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Tuple

from repro.errors import QueryError
from repro.indexstructures.bloom import BloomFilter
from repro.query.ast import (And, Compare, Keyword, Not, Or, Predicate,
                             RelativeAge)

# A widened summary is rebuilt (shrunk back to ground truth) only after
# deletes have accumulated past max(_REBUILD_MIN_DELETES, live file
# count): rebuilds are deterministic but cost a full store sweep, so they
# must stay rare relative to the deletes that motivate them.
_REBUILD_MIN_DELETES = 32


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, complex)


class PartitionSummary:
    """Live, incrementally-widened summary of one ACG replica's files."""

    __slots__ = ("bloom", "zones", "attrs_seen", "deletes_since_rebuild")

    def __init__(self) -> None:
        self.bloom = BloomFilter()
        # attr name -> [lo, hi] over *numeric* values only (bool counts
        # as numeric; strings are tracked just by name in attrs_seen).
        self.zones: Dict[str, list] = {}
        self.attrs_seen: set = set()
        self.deletes_since_rebuild = 0

    def observe(self, attrs: Mapping[str, Any],
                keywords: Iterable[str]) -> None:
        """Widen the summary to cover one (new or refreshed) file."""
        for name, value in attrs.items():
            self.attrs_seen.add(name)
            if _is_numeric(value):
                zone = self.zones.get(name)
                if zone is None:
                    self.zones[name] = [value, value]
                else:
                    if value < zone[0]:
                        zone[0] = value
                    if value > zone[1]:
                        zone[1] = value
        self.bloom.add_all(keywords)

    def observe_batch(self, entries: Iterable[Tuple[Mapping[str, Any],
                                                    Iterable[str]]]) -> None:
        """One widening pass for a whole group commit.

        Equivalent to calling :meth:`observe` per entry (widening is
        commutative and monotone), but the group-commit path pays the
        bookkeeping once per batch instead of once per update.
        """
        for attrs, keywords in entries:
            self.observe(attrs, keywords)

    def note_delete(self) -> None:
        self.deletes_since_rebuild += 1

    def needs_rebuild(self, live_files: int) -> bool:
        return self.deletes_since_rebuild > max(_REBUILD_MIN_DELETES,
                                                live_files)

    def rebuild(self, store) -> None:
        """Deterministically reconstruct from the attribute store,
        shedding the slack accumulated by deletes."""
        self.bloom = BloomFilter()
        self.zones = {}
        self.attrs_seen = set()
        self.deletes_since_rebuild = 0
        for file_id in store.file_ids():
            self.observe(store.attrs(file_id), store.keywords(file_id))

    def snapshot(self, acg_id: int, watermark: Tuple[str, int, int],
                 dirty: bool, file_count: int) -> "SummarySnapshot":
        return SummarySnapshot(
            acg_id=acg_id,
            watermark=watermark,
            dirty=dirty,
            file_count=file_count,
            attrs_seen=frozenset(self.attrs_seen),
            zones=tuple(sorted((name, zone[0], zone[1])
                               for name, zone in self.zones.items())),
            bloom_bits=self.bloom.bits,
            bloom_m=self.bloom.m_bits,
            bloom_k=self.bloom.k,
        )


@dataclass(frozen=True)
class SummarySnapshot:
    """Immutable wire form of a partition summary.

    ``watermark`` is ``(node, replica incarnation, applied count)`` — an
    identity-scoped commit version: a recreated replica gets a fresh
    incarnation, so a snapshot of a *previous life* of the same ACG can
    never validate against the new one.  ``dirty`` marks snapshots taken
    while uncommitted updates were pending; clients must not prune on
    them.
    """

    acg_id: int
    watermark: Tuple[str, int, int]
    dirty: bool
    file_count: int
    attrs_seen: FrozenSet[str]
    zones: Tuple[Tuple[str, float, float], ...]
    bloom_bits: int
    bloom_m: int
    bloom_k: int

    def keyword_may_match(self, term: str) -> bool:
        bloom = BloomFilter(self.bloom_m, self.bloom_k, bits=self.bloom_bits)
        return bloom.might_contain(term)


def _compare_may_match(snapshot: SummarySnapshot, predicate: Compare,
                       now: float) -> bool:
    if predicate.attr not in snapshot.attrs_seen:
        # No covered file carries this attribute at all, and a missing
        # attribute never satisfies *any* comparison (SQL-NULL
        # semantics in ast.matches) — prunable regardless of op.
        return False
    time_derived = isinstance(predicate.value, RelativeAge)
    resolved = predicate.resolved(now)
    if not _is_numeric(resolved.value):
        return True  # string compare: zones don't cover it — fail open
    if resolved.op == "!=":
        return True
    zone = next((z for z in snapshot.zones if z[0] == resolved.attr), None)
    if zone is None:
        # Attribute seen, but never with a numeric value.  A numeric
        # comparison against non-numeric stored values evaluates False,
        # but a *mixed* attribute could have had numeric values widened
        # away — zones are only reset on rebuild, so absence here means
        # genuinely never numeric.  Still fail open: cheap and simple.
        return True
    _, lo, hi = zone
    value = resolved.value
    if resolved.op == ">":
        return hi > value  # sound for time-derived: cutoff only grows
    if resolved.op == ">=":
        return hi >= value
    if time_derived:
        # Resolved <, <= or == from a RelativeAge: the allowed set grows
        # or moves as the node's clock passes the client's — fail open.
        return True
    if resolved.op == "<":
        return lo < value
    if resolved.op == "<=":
        return lo <= value
    if resolved.op == "==":
        return lo <= value <= hi
    return True


def summary_may_match(snapshot: SummarySnapshot, predicate: Predicate,
                      now: float) -> bool:
    """Could *any* file covered by this snapshot satisfy the predicate?

    False is a proof of emptiness (the leg can be skipped, subject to
    node-side watermark validation); True just means "cannot rule it
    out".
    """
    if snapshot.file_count == 0:
        return False  # an empty committed partition matches nothing
    if isinstance(predicate, Compare):
        return _compare_may_match(snapshot, predicate, now)
    if isinstance(predicate, Keyword):
        return snapshot.keyword_may_match(predicate.term)
    if isinstance(predicate, And):
        return all(summary_may_match(snapshot, c, now)
                   for c in predicate.children)
    if isinstance(predicate, Or):
        return any(summary_may_match(snapshot, c, now)
                   for c in predicate.children)
    if isinstance(predicate, Not):
        return True  # negation over an over-approximation: fail open
    raise QueryError(f"unknown predicate node: {predicate!r}")
