"""Frozen index segments, the node-local segment cache, and the freeze policy.

The cold half of tiered index storage (Airphant's design, PAPERS.md): a
partition that has gone cold is serialized into one compressed,
**immutable** segment file — attribute store, ACG records, index specs,
bitmap posting lists for every path keyword, and a zone-map/Bloom
summary — and parked in the simulated object store.  Searches against a
frozen partition consult the RAM-resident summary first (a provably
empty partition answers without touching the cold tier at all), hydrate
the segment through a byte-budgeted LRU cache on first miss, and run the
ordinary exact residual filter against the hydrated view, so answers are
byte-identical to the live B+tree/hash path.  The first *write* thaws
the partition back to the live path.

The same bytes double as a transfer format: checkpoints
(:mod:`repro.cluster.persistence` detects the segment magic) and online
migration (``handle_install_partition`` accepts a ``{"segment": ...}``
payload) can both carry a segment instead of the legacy checkpoint
frame.

Layout mirrors the checkpoint frame: ``PSEG`` magic, version, acg id and
compressed-body length, CRC over the compressed body, then a
zlib-compressed sequence of length-prefixed
:func:`~repro.indexstructures.serialization.dump_value` sections.
"""

from __future__ import annotations

import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import SegmentCorruption
from repro.indexstructures.base import IndexKind
from repro.indexstructures.postings import PostingList, intersect_all
from repro.indexstructures.serialization import dump_value, load_value
from repro.query.ast import Keyword, Predicate, conjuncts, matches
from repro.query.executor import AttributeStore
from repro.query.planner import IndexSpec
from repro.query.summary import SummarySnapshot

SEGMENT_MAGIC = b"PSEG"
_VERSION = 1
_SECTIONS = 6  # meta, specs, files, acg records, postings, summary


def segment_key(node_name: str, acg_id: int) -> str:
    """Canonical object-store key for one node's frozen partition."""
    return f"segments/{node_name}/acg{acg_id:08d}.seg"


# -- serialization ---------------------------------------------------------------


def dump_segment(replica, node_name: str) -> bytes:
    """Serialize one live replica into an immutable frozen segment.

    The dump is canonical — files, keywords and chunks are emitted in
    sorted order — so freezing the same replica state twice yields the
    same bytes (the determinism the chaos replay check leans on).
    """
    watermark = (node_name, replica.incarnation, replica.applied)
    sections: List[bytes] = []
    # 1. meta: acg id + commit watermark + file count.
    sections.append(dump_value((replica.acg_id, node_name,
                                replica.incarnation, replica.applied,
                                replica.file_count)))
    # 2. index specs, so a thaw/install can rebuild live structures.
    specs = tuple((s.name, s.kind.value, tuple(s.attrs))
                  for s in replica.specs.values())
    sections.append(dump_value(specs))
    # 3. attribute store: (file_id, attrs-as-pairs, path), sorted by id.
    files = []
    for file_id in sorted(replica.store.file_ids()):
        attrs = replica.store.attrs(file_id)
        path = attrs.get("path")
        pairs = tuple(sorted((k, v) for k, v in attrs.items() if k != "path"))
        files.append((file_id, pairs, path))
    sections.append(dump_value(tuple(files)))
    # 4. ACG edge/vertex records.
    sections.append(dump_value(tuple(replica.graph.to_records())))
    # 5. keyword postings: roaring chunk dumps per path keyword.
    postings: Dict[str, PostingList] = {}
    for file_id in sorted(replica.store.file_ids()):
        for term in sorted(replica.store.keywords(file_id)):
            postings.setdefault(term, PostingList()).add(file_id)
    sections.append(dump_value(tuple(
        (term, postings[term].dump_chunks()) for term in sorted(postings))))
    # 6. zone maps + Bloom summary (the RAM-resident pruning sidecar).
    snapshot = replica.summary.snapshot(replica.acg_id, watermark,
                                        dirty=False,
                                        file_count=replica.file_count)
    bloom_bytes = snapshot.bloom_bits.to_bytes((snapshot.bloom_m + 7) // 8,
                                               "little")
    sections.append(dump_value((tuple(sorted(snapshot.attrs_seen)),
                                snapshot.zones, bloom_bytes,
                                snapshot.bloom_m, snapshot.bloom_k)))
    body = zlib.compress(
        b"".join(struct.pack("<I", len(s)) + s for s in sections), 6)
    header = SEGMENT_MAGIC + struct.pack("<IIQ", _VERSION, replica.acg_id,
                                         len(body)) \
        + struct.pack("<I", zlib.crc32(body))
    return header + body


def is_segment(data: bytes) -> bool:
    """Whether a blob is a frozen segment (vs a legacy checkpoint)."""
    return data[:4] == SEGMENT_MAGIC


def _parse_sections(data: bytes) -> List[Any]:
    if data[:4] != SEGMENT_MAGIC:
        raise SegmentCorruption("not a frozen segment (bad magic)")
    try:
        version, _acg_id, body_len = struct.unpack_from("<IIQ", data, 4)
        (crc,) = struct.unpack_from("<I", data, 20)
    except struct.error as exc:
        raise SegmentCorruption(f"truncated segment header: {exc}") from None
    if version != _VERSION:
        raise SegmentCorruption(f"unsupported segment version {version}")
    body = data[24:24 + body_len]
    if len(body) != body_len or zlib.crc32(body) != crc:
        raise SegmentCorruption("segment failed CRC validation (torn read?)")
    try:
        raw = zlib.decompress(body)
    except zlib.error as exc:
        raise SegmentCorruption(f"segment decompression failed: {exc}") from None
    offset = 0
    sections: List[Any] = []
    for _ in range(_SECTIONS):
        (n,) = struct.unpack_from("<I", raw, offset)
        offset += 4
        value, consumed = load_value(raw, offset)
        if consumed - offset != n:
            raise SegmentCorruption("segment section length mismatch")
        offset = consumed
        sections.append(value)
    return sections


def load_segment(data: bytes) -> "SegmentView":
    """Parse and validate a segment into a searchable hydrated view.

    Raises :class:`~repro.errors.SegmentCorruption` on any framing, CRC
    or decompression failure — the caller falls back to its live backing
    replica (hydrate-from-replica).
    """
    meta, specs_raw, files_raw, acg_records, postings_raw, summary_raw = \
        _parse_sections(data)
    acg_id, node_name, incarnation, applied, file_count = meta
    specs = [IndexSpec(name, IndexKind(kind), tuple(attrs))
             for name, kind, attrs in specs_raw]
    store = AttributeStore()
    for file_id, pairs, path in files_raw:
        store.put(file_id, dict(pairs), path)
    postings = {term: PostingList.from_chunks(chunks)
                for term, chunks in postings_raw}
    attrs_seen, zones, bloom_bytes, bloom_m, bloom_k = summary_raw
    snapshot = SummarySnapshot(
        acg_id=acg_id,
        watermark=(node_name, incarnation, applied),
        dirty=False,
        file_count=file_count,
        attrs_seen=frozenset(attrs_seen),
        zones=tuple(tuple(z) for z in zones),
        bloom_bits=int.from_bytes(bloom_bytes, "little"),
        bloom_m=bloom_m,
        bloom_k=bloom_k,
    )
    return SegmentView(acg_id=acg_id, specs=specs, store=store,
                       acg_records=list(acg_records), postings=postings,
                       snapshot=snapshot, serialized_bytes=len(data))


def load_segment_payload(data: bytes) -> Dict[str, Any]:
    """Parse a segment into the legacy checkpoint payload shape
    (``{acg_id, specs, files, acg_records}``) so adoption/installation
    code consumes segments and checkpoints identically."""
    view = load_segment(data)
    files = [(file_id, dict(view.store.attrs(file_id)),
              view.store.attrs(file_id).get("path"))
             for file_id in sorted(view.store.file_ids())]
    for _fid, attrs, _path in files:
        attrs.pop("path", None)
    return {"acg_id": view.acg_id, "specs": view.specs, "files": files,
            "acg_records": list(view.acg_records)}


# -- the hydrated view -----------------------------------------------------------


@dataclass
class SegmentView:
    """One segment, parsed and searchable.

    Searches run the same exact semantics as the live path: candidates
    come from the segment's bitmap postings (keyword conjuncts) or a
    full scan, then every candidate passes the full predicate as a
    residual filter — so the matching set is identical to what the live
    B+tree/hash indexes would produce for the same data.
    """

    acg_id: int
    specs: List[IndexSpec]
    store: AttributeStore
    acg_records: List[Any]
    postings: Dict[str, PostingList]
    snapshot: SummarySnapshot
    serialized_bytes: int

    def file_count(self) -> int:
        return len(self.store)

    def resident_bytes(self) -> int:
        """Hydrated RAM footprint — the quantity the segment cache
        budgets.  No live index structures exist, so this is roughly 4x
        denser than the live replica's residency charge."""
        return 256 + self.store.estimated_bytes()

    def search(self, predicate: Predicate, now: float,
               use_postings: bool = True) -> Set[int]:
        """Exact matching file ids (same answer as the live path)."""
        candidates = None
        if use_postings:
            terms = [c.term for c in conjuncts(predicate)
                     if isinstance(c, Keyword)]
            if terms:
                candidates = intersect_all(
                    self.postings.get(term, PostingList()) for term in terms)
        if candidates is None:
            candidates = self.store.file_ids()
        result: Set[int] = set()
        for file_id in candidates:
            if file_id in result or file_id not in self.store:
                continue
            if matches(predicate, self.store.attrs(file_id),
                       self.store.keywords(file_id), now):
                result.add(file_id)
        return result


# -- the node-local segment cache ------------------------------------------------


@dataclass
class SegmentCacheStats:
    """Counters a :class:`SegmentCache` accumulates."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    rejected: int = 0

    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class SegmentCache:
    """Byte-budgeted LRU of hydrated segment views, with admission.

    Admission control keeps one oversized segment from wiping the whole
    cache: a view bigger than ``admit_fraction`` of the budget is served
    once and not retained (``rejected``), the classic scan-resistance
    guard.  Sits alongside :class:`repro.cluster.cache.IndexCache` in
    the node's memory budget — that one buffers uncommitted *writes*,
    this one caches hydrated *cold reads*.
    """

    def __init__(self, budget_bytes: int, admit_fraction: float = 0.25) -> None:
        if budget_bytes <= 0:
            raise ValueError(f"budget must be positive: {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.admit_fraction = admit_fraction
        self.stats = SegmentCacheStats()
        self._views: "OrderedDict[str, SegmentView]" = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, key: str) -> bool:
        return key in self._views

    def estimated_bytes(self) -> int:
        """Hydrated bytes currently resident."""
        return self._bytes

    def get(self, key: str) -> Optional[SegmentView]:
        """Look one view up (LRU-touching it); None on miss."""
        view = self._views.get(key)
        if view is None:
            self.stats.misses += 1
            return None
        self._views.move_to_end(key)
        self.stats.hits += 1
        return view

    def put(self, key: str, view: SegmentView) -> bool:
        """Admit a freshly hydrated view; returns whether it was kept."""
        nbytes = view.resident_bytes()
        if nbytes > self.budget_bytes * self.admit_fraction:
            self.stats.rejected += 1
            return False
        old = self._views.pop(key, None)
        if old is not None:
            self._bytes -= old.resident_bytes()
        self._views[key] = view
        self._bytes += nbytes
        while self._bytes > self.budget_bytes and len(self._views) > 1:
            _evicted_key, evicted = self._views.popitem(last=False)
            self._bytes -= evicted.resident_bytes()
            self.stats.evictions += 1
        return True

    def invalidate(self, key: str) -> None:
        """Drop one view (thaw / drop-partition path)."""
        view = self._views.pop(key, None)
        if view is not None:
            self._bytes -= view.resident_bytes()

    def resize(self, budget_bytes: int) -> None:
        """Change the byte budget, evicting LRU-first if shrinking."""
        if budget_bytes <= 0:
            raise ValueError(f"budget must be positive: {budget_bytes}")
        self.budget_bytes = budget_bytes
        while self._bytes > self.budget_bytes and self._views:
            _evicted_key, evicted = self._views.popitem(last=False)
            self._bytes -= evicted.resident_bytes()
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop everything (crash / cold-start measurement)."""
        self._views.clear()
        self._bytes = 0


# -- the freeze policy -----------------------------------------------------------


@dataclass
class TierPolicy:
    """When a partition is cold enough to freeze.

    Driven from the Index Node's tick using its per-ACG last-access
    stats: a partition freezes once it has seen no search *or* update
    for ``freeze_age_s`` and its store is at least ``min_bytes`` (tiny
    partitions are not worth a round trip to the cold tier).
    """

    freeze_age_s: float = 60.0
    min_bytes: int = 4096

    def should_freeze(self, now: float, last_access: float,
                      store_bytes: int) -> bool:
        return (now - last_access >= self.freeze_age_s
                and store_bytes >= self.min_bytes)


@dataclass
class FrozenPartition:
    """Node-side record of one frozen partition (the RAM-resident part)."""

    acg_id: int
    key: str
    serialized_bytes: int
    hydrated_bytes: int
    snapshot: SummarySnapshot
    frozen_at: float
    watermark: Tuple[str, int, int]
