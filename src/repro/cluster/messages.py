"""Typed messages exchanged between Propeller components."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple


class UpdateOp(enum.Enum):
    """Whether an update (re)indexes or forgets a file."""
    UPSERT = "upsert"
    DELETE = "delete"


@dataclass(frozen=True)
class IndexUpdate:
    """One file-indexing request: (re)index or forget one file.

    ``attrs`` carries whatever fields the caller wants indexed — inode
    metadata and/or user-defined attributes; ``path`` feeds the keyword
    index.  Serialized size is estimated for network/WAL cost accounting.
    """

    file_id: int
    op: UpdateOp = UpdateOp.UPSERT
    attrs: Tuple[Tuple[str, Any], ...] = ()
    path: Optional[str] = None

    @staticmethod
    def upsert(file_id: int, attrs: Dict[str, Any], path: Optional[str] = None) -> "IndexUpdate":
        """Build an upsert update from an attribute dict."""
        return IndexUpdate(file_id=file_id, op=UpdateOp.UPSERT,
                           attrs=tuple(sorted(attrs.items())), path=path)

    @staticmethod
    def delete(file_id: int) -> "IndexUpdate":
        """Build a delete update for one file id."""
        return IndexUpdate(file_id=file_id, op=UpdateOp.DELETE)

    @property
    def attr_dict(self) -> Dict[str, Any]:
        """The attributes as a plain dict."""
        return dict(self.attrs)

    def wire_bytes(self) -> int:
        """Approximate serialized size for cost models."""
        return 24 + 16 * len(self.attrs) + (len(self.path) if self.path else 0)


@dataclass(frozen=True)
class UpdateBatch:
    """A per-ACG batch envelope: many updates, one RPC, one group commit.

    The client coalesces per-file updates (flushing on size/age
    thresholds) and ships one envelope per (node, partition) pair.  The
    envelope is sequence-shaped so the Index Node handler — and every
    forwarding path between client and primary — can treat it exactly
    like the legacy ``List[IndexUpdate]`` argument.

    ``wire_bytes`` amortizes the per-request framing that the legacy
    path paid once per update: one 24-byte header for the envelope plus
    the per-update payloads minus their now-shared routing preamble.
    """

    acg_id: int
    updates: Tuple[IndexUpdate, ...]

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self):
        return iter(self.updates)

    def __getitem__(self, i):
        return self.updates[i]

    def wire_bytes(self) -> int:
        """Amortized serialized size: shared envelope header, packed updates."""
        per_update = sum(u.wire_bytes() for u in self.updates)
        # Each coalesced update sheds 16 bytes of per-request routing
        # preamble (acg id, epoch, auth) that now rides on the envelope.
        saved = 16 * max(0, len(self.updates) - 1)
        return 24 + per_update - saved


class UpdateAck(int):
    """An Index Node's ack for one ``index_update`` batch.

    Subclasses ``int`` (the accepted-update count) so every legacy call
    site that treats the ack as a plain count keeps working; replication-
    aware clients additionally read the partition's committed replication
    sequence (``seq``) to maintain their read-your-writes watermark for
    hedged follower reads.  ``seq == 0`` means the node is not running
    replication for the partition.
    """

    acg_id: int
    seq: int
    repl_epoch: int

    def __new__(cls, n: int, acg_id: int = -1, seq: int = 0,
                repl_epoch: int = 0) -> "UpdateAck":
        ack = super().__new__(cls, n)
        ack.acg_id = acg_id
        ack.seq = seq
        ack.repl_epoch = repl_epoch
        return ack


@dataclass(frozen=True)
class RouteEntry:
    """Master Node's answer for one file: which ACG on which Index Node."""

    file_id: int
    acg_id: int
    node: str


@dataclass(frozen=True)
class RouteTableEntry:
    """One partition's place in a versioned route table.

    ``node`` is None for a partition that currently has no owner (lost in
    a failover and not yet re-placed).  ``size`` is the Master's view of
    the partition's file count; ``size == -1`` marks a partition that was
    *dropped* (merged away) so delta consumers can forget it.
    """

    acg_id: int
    node: Optional[str]
    size: int
    # Follower replicas (RF > 1): alternate nodes a client may hedge a
    # search leg to.  Empty when replication is off — the default keeps
    # the wire format compatible with pre-replication route tables.
    replicas: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RouteTable:
    """A versioned snapshot (or delta) of the cluster's routing state.

    The Master serves this instead of per-batch routing: ``epoch`` is the
    routing epoch the table is current as of, ``full`` says whether
    ``entries`` describe the whole cluster or only the partitions that
    changed since the client's epoch, and ``fresh`` short-circuits the
    common case — the client was already up to date and ``entries`` is
    empty.  ``cluster_target`` ships the placement policy's open-partition
    bound so clients can mirror the Master's placement rule locally.
    """

    epoch: int
    full: bool
    cluster_target: int
    entries: Tuple[RouteTableEntry, ...] = ()
    fresh: bool = False


@dataclass
class SearchResult:
    """One Index Node's (partial) answer to a search."""

    node: str
    acg_id: int
    file_ids: FrozenSet[int] = frozenset()
    paths: Tuple[str, ...] = ()


@dataclass
class SearchReply:
    """An Index Node's answer to an epoch-stamped search leg.

    ``results`` covers the ACGs the node owns; ``not_owned`` names the
    requested ACGs it does *not* own (the search-path equivalent of a
    stale-route NACK — the client refreshes its route table and retries
    just those partitions); ``epoch`` is the node's latest known routing
    epoch, letting a behind-the-times client detect that partitions it
    has never heard of may exist.
    """

    node: str
    epoch: int
    results: List[SearchResult] = field(default_factory=list)
    not_owned: Tuple[int, ...] = ()
    # ACGs the client asked to skip whose skip the node *validated*
    # (summary watermark exact, no pending updates): served-with-empty-
    # answer, proven by the node.  Unvalidated skips are searched anyway
    # and come back in ``results`` instead.
    pruned_ok: Tuple[int, ...] = ()


@dataclass
class ReplicaSearchReply:
    """A follower's answer to a hedged search leg.

    ``results`` covers the requested ACGs the node follows; ``missing``
    names requested ACGs it holds no follower replica for (the hedge is
    unusable for those).  ``applied`` reports the follower's applied
    replication sequence per answered ACG, and ``lagging`` the subset
    that sat *below* the client's read watermark — those answers are
    only usable under the client's opt-in partial-results deadline.
    """

    node: str
    epoch: int
    results: List[SearchResult] = field(default_factory=list)
    applied: Tuple[Tuple[int, int], ...] = ()
    lagging: Tuple[int, ...] = ()
    missing: Tuple[int, ...] = ()


@dataclass(frozen=True)
class Heartbeat:
    """Index Node → Master Node liveness + ACG status report."""

    node: str
    timestamp: float
    acg_sizes: Tuple[Tuple[int, int], ...] = ()   # (acg_id, file count)
    free_bytes: int = 0
    # Partition summary snapshots for the ACGs this node answers for
    # (repro.query.summary.SummarySnapshot) — piggybacked so summary
    # distribution costs zero extra RPCs.
    summaries: Tuple[Any, ...] = ()
    # Replication status records, piggybacked the same way (RF > 1 only):
    #   ("p", acg_id, repl_epoch, last_seq, ((follower, acked_seq), ...))
    # for partitions this node primaries, and
    #   ("f", acg_id, repl_epoch, applied_seq)
    # for partitions it follows.
    replication: Tuple[Any, ...] = ()
    # Tier residency (tiered storage only): ACG ids this node currently
    # keeps frozen on the cold tier.  Empty when tiering is off — the
    # default keeps the wire format compatible.
    frozen_acgs: Tuple[int, ...] = ()


@dataclass(frozen=True)
class SummaryTable:
    """A versioned dump of the Master's partition-summary cache.

    Mirrors :class:`RouteTable`'s fresh/full protocol: ``version`` is a
    Master-local counter bumped whenever any stored summary changes;
    ``fresh`` short-circuits the already-up-to-date case with an empty
    payload.  Deleted partitions simply stop appearing — clients replace
    their cache wholesale on a non-fresh response, so no tombstones are
    needed.
    """

    version: int
    entries: Tuple[Any, ...] = ()   # SummarySnapshot tuple
    fresh: bool = False
