"""The Propeller cluster: Master Node, Index Nodes, client, service façade.

Mirrors Figure 6 of the paper: clients capture ACGs and send batched
file-indexing requests; the Master Node routes by its file→ACG map and
assigns new ACGs to the least-loaded Index Node; Index Nodes append
updates to a write-ahead log and an in-memory cache committed on a
timeout or on the next search; searches fan out to the Index Nodes
hosting ACGs that carry the queried index name and run in parallel.
"""

from repro.cluster.cache import IndexCache
from repro.cluster.client import PropellerClient
from repro.cluster.index_node import AcgReplica, IndexNode
from repro.cluster.master import MasterNode
from repro.cluster.messages import (
    Heartbeat,
    IndexUpdate,
    RouteEntry,
    SearchResult,
    UpdateOp,
)
from repro.cluster.persistence import (
    checkpoint_replica,
    list_checkpoints,
    read_checkpoint,
    replica_path,
)
from repro.cluster.service import PropellerService
from repro.cluster.wal import WriteAheadLog

__all__ = [
    "IndexCache",
    "PropellerClient",
    "AcgReplica",
    "IndexNode",
    "MasterNode",
    "Heartbeat",
    "IndexUpdate",
    "RouteEntry",
    "SearchResult",
    "UpdateOp",
    "PropellerService",
    "WriteAheadLog",
    "checkpoint_replica",
    "list_checkpoints",
    "read_checkpoint",
    "replica_path",
]
