"""Service façade: wires a whole Propeller deployment together.

One call builds the paper's testbed in simulation: a Master Node machine,
``num_index_nodes`` Index Node machines behind a simulated gigabit switch,
the periodic background work (cache-timeout commits, heartbeats, Master
metadata checkpoints), and clients mounting the shared VFS.  Single-node
mode co-locates the Master and one Index Node on the same machine with
loopback RPC — the configuration used for the MySQL and Spotlight
comparisons.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set

from repro.cluster.client import PropellerClient
from repro.cluster.index_node import IndexNode
from repro.cluster.master import STANDBY_TICK_S, MasterNode
from repro.core.partitioner import PartitioningPolicy
from repro.fs.vfs import VirtualFileSystem
from repro.obs.freshness import NULL_FRESHNESS, FreshnessTracker
from repro.obs.health import HealthMonitor
from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTracker
from repro.obs.timeline import NULL_TIMELINE, TimelineRecorder
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop, PeriodicTask
from repro.sim.machine import Cluster, MachineSpec
from repro.sim.objectstore import SimObjectStore
from repro.sim.rpc import RetryPolicy, RpcNetwork

HEARTBEAT_PERIOD_S = 5.0
CHECKPOINT_PERIOD_S = 30.0


class PropellerService:
    """A running Propeller deployment (simulated)."""

    def __init__(self, num_index_nodes: int = 1,
                 spec: Optional[MachineSpec] = None,
                 policy: Optional[PartitioningPolicy] = None,
                 cache_timeout_s: float = 5.0,
                 single_node: bool = False,
                 tracing: bool = False,
                 retry_policy: Optional[RetryPolicy] = None,
                 rpc_seed: int = 0,
                 auto_failover: bool = False,
                 heartbeat_timeout_s: float = 15.0,
                 replication_factor: int = 1,
                 standby_master: bool = False) -> None:
        if num_index_nodes < 1:
            raise ValueError("need at least one index node")
        if replication_factor > num_index_nodes:
            raise ValueError(
                f"replication factor {replication_factor} needs at least "
                f"that many index nodes (have {num_index_nodes})")
        if standby_master and single_node:
            raise ValueError("a warm standby needs its own machine "
                             "(standby_master requires single_node=False)")
        self.replication_factor = replication_factor
        self.policy = policy if policy is not None else PartitioningPolicy()
        self.single_node = single_node and num_index_nodes == 1
        self.standby_enabled = standby_master
        index_node_names = [f"in{i}" for i in range(1, num_index_nodes + 1)]
        machine_names = index_node_names if self.single_node else (["mn"] + index_node_names)
        if standby_master:
            machine_names = machine_names + ["mn2"]
        self.cluster = Cluster(machine_names, spec=spec)
        self.clock: SimClock = self.cluster.clock
        self.loop = EventLoop(self.clock)
        # Observability: one registry for the whole deployment; tracing
        # defaults to the free no-op tracer (enable_tracing swaps it in).
        self.registry = MetricsRegistry()
        # The RPC layer's backoff jitter comes from a dedicated seeded
        # RNG so two runs of the same deployment burn identical virtual
        # time (the chaos determinism contract).
        self.rpc = RpcNetwork(self.cluster.network,
                              retry_policy=retry_policy,
                              rng=random.Random(rpc_seed),
                              registry=self.registry)
        self.tracer = NULL_TRACER
        self.timeline = NULL_TIMELINE
        self.freshness = NULL_FRESHNESS
        # The health plane is always on: the journal, SLO tracker, and
        # health monitor charge zero simulated time and draw no
        # randomness, so they can never change a benchmark's numbers or
        # break the chaos determinism contract.
        self.journal = EventJournal(self.clock)
        master_machine = self.cluster["in1"] if self.single_node else self.cluster["mn"]
        self.master = MasterNode(master_machine, self.rpc, policy=self.policy,
                                 registry=self.registry,
                                 auto_failover=auto_failover,
                                 heartbeat_timeout_s=heartbeat_timeout_s,
                                 replication_factor=replication_factor,
                                 journal=self.journal,
                                 peer="master2" if standby_master else None)
        # ``masters`` lists every Master process, acting first at boot;
        # ``self.master`` always points at the one the deployment
        # currently believes is acting (re-pointed on standby promotion).
        self.masters: List[MasterNode] = [self.master]
        if standby_master:
            standby = MasterNode(self.cluster["mn2"], self.rpc,
                                 policy=self.policy,
                                 registry=self.registry,
                                 auto_failover=auto_failover,
                                 heartbeat_timeout_s=heartbeat_timeout_s,
                                 replication_factor=replication_factor,
                                 journal=self.journal,
                                 endpoint_name="master2", peer="master",
                                 acting=False)
            self.masters.append(standby)
        for m in self.masters:
            m._on_promote = self._master_promoted
        # Hot-path batching (group-commit WAL, bulk apply, vectorized
        # postings, client-side coalescing).  Flipped service-wide by
        # :meth:`set_batching`; False restores the legacy per-op path.
        self.batching = True
        # Tiered storage (frozen cold partitions on a simulated object
        # store).  One shared store for the deployment — keys are
        # namespaced per node — flipped service-wide by
        # :meth:`set_tiering`; off by default, like batching's inverse.
        self.tiering = False
        self.object_store = SimObjectStore(self.clock)
        self.index_nodes: Dict[str, IndexNode] = {}
        for name in index_node_names:
            node = IndexNode(name, self.cluster[name], cache_timeout_s=cache_timeout_s)
            # Migration forwarding: a node holding a handoff intent
            # forwards stamped updates to the new owner over RPC.
            node.rpc = self.rpc
            node.journal = self.journal
            node.registry = self.registry
            node.object_store = self.object_store
            self.rpc.add_endpoint(node.endpoint)
            self.master.register_index_node(name)
            self.index_nodes[name] = node
        if standby_master:
            # Bootstrap the standby's tail before any client traffic:
            # the initial pull installs a snapshot of the membership
            # records above and arms the acting Master's synchronous
            # push stream, so the standby is exactly current from the
            # first mutation on — a promotion can never install a
            # stale (or empty) MetaState, however early the crash.
            self.masters[1].standby_tick()
        self.vfs = VirtualFileSystem(self.clock)
        for node in self.index_nodes.values():
            node.shared_vfs = self.vfs
        self._clients: List[PropellerClient] = []
        self._tasks = [
            PeriodicTask(self.loop, cache_timeout_s / 2, self._tick_caches),
            PeriodicTask(self.loop, HEARTBEAT_PERIOD_S, self._poll_heartbeats),
            PeriodicTask(self.loop, CHECKPOINT_PERIOD_S, self._checkpoint_all),
        ]
        if standby_master:
            self._tasks.append(
                PeriodicTask(self.loop, STANDBY_TICK_S, self._standby_ticks))
        # Health monitor before the SLO tracker: its gauge registrations
        # (cluster.health.repl_lag_max) are what the replication-lag SLO
        # spec reads.
        self.health = HealthMonitor(self.clock, self.registry, self.master,
                                    self.index_nodes, journal=self.journal)
        self.health.slos = self.slos = SloTracker(
            self.clock, self.registry, journal=self.journal)
        self._register_metrics()
        if tracing:
            self.enable_tracing()

    # -- observability --------------------------------------------------------

    def _register_metrics(self) -> None:
        """Publish the deployment's live state into the metrics registry.

        Callable gauges read the same structures the components already
        maintain, so the registry can never drift from ground truth and
        registration charges zero simulated time.
        """
        reg = self.registry
        reg.gauge_fn("cluster.virtual_time_s", self.clock.now)
        reg.gauge_fn("cluster.indexed_files", self.total_indexed_files)
        reg.gauge_fn("cluster.master.partitions",
                     lambda: len(self.master.partitions))
        reg.gauge_fn("cluster.master.split_decisions",
                     lambda: len(self.master.splits))
        reg.gauge_fn("cluster.master.checkpoints_written",
                     lambda: self.master.checkpoints_written)
        # Routing-epoch health: the current epoch, how many routing
        # round-trips the Master served per indexed update (the hot-path
        # cost the epoch protocol shrinks), how well client route caches
        # hit, and how far behind the most-stale client cache runs.
        reg.gauge_fn("cluster.master.epoch",
                     lambda: self.master.partitions.epoch)
        reg.gauge_fn("cluster.master.migrations_completed",
                     lambda: sum(1 for e in self.master.migration_log
                                 if e.outcome == "done"))
        reg.gauge_fn("cluster.master.route_rpcs_per_update",
                     self._route_rpcs_per_update)
        reg.gauge_fn("cluster.client.route_cache_hit_rate",
                     self._route_cache_hit_rate)
        reg.gauge_fn("cluster.client.route_epoch_age",
                     self._route_epoch_age)
        # Search-pruning health: node-validated result-cache hit rate
        # (repeated searches of quiescent ACGs skip planning + scans).
        reg.gauge_fn("search.result_cache_hit_rate",
                     self._result_cache_hit_rate)
        network = self.cluster.network
        reg.gauge_fn("cluster.network.messages",
                     lambda: network.stats.messages)
        reg.gauge_fn("cluster.network.bytes_sent",
                     lambda: network.stats.bytes_sent)
        # Tiered storage: cold-tier occupancy/traffic and the simulated
        # dollar cost of the object store (all zero with tiering off).
        store = self.object_store
        reg.gauge_fn("tier.object_store.bytes", store.stored_bytes)
        reg.gauge_fn("tier.object_store.objects", lambda: len(store.keys()))
        reg.gauge_fn("tier.object_store.gets", lambda: store.stats.gets)
        reg.gauge_fn("tier.object_store.puts", lambda: store.stats.puts)
        reg.gauge_fn("tier.object_store.errors", lambda: store.stats.errors)
        reg.gauge_fn("tier.object_store.cost_usd", store.simulated_cost_usd)
        reg.gauge_fn("tier.frozen_partitions",
                     lambda: sum(len(n.frozen)
                                 for n in self.index_nodes.values()))
        reg.gauge_fn("tier.segment_cache.hit_rate",
                     self._segment_cache_hit_rate)
        for name, node in self.index_nodes.items():
            self._register_node_metrics(name, node)

    def _register_node_metrics(self, name: str, node: IndexNode) -> None:
        reg = self.registry
        prefix = f"cluster.{name}"
        reg.gauge_fn(f"{prefix}.acgs", lambda n=node: len(n.replicas))
        reg.gauge_fn(f"{prefix}.files",
                     lambda n=node: sum(r.file_count for r in n.replicas.values()))
        reg.gauge_fn(f"{prefix}.resident_bytes",
                     lambda n=node: n._resident_bytes)
        reg.gauge_fn(f"{prefix}.cache.pending", lambda n=node: len(n.cache))
        reg.gauge_fn(f"{prefix}.cache.timeout_commits",
                     lambda n=node: n.cache.stats.timeout_commits)
        reg.gauge_fn(f"{prefix}.cache.search_commits",
                     lambda n=node: n.cache.stats.search_commits)
        reg.gauge_fn(f"{prefix}.wal.bytes", lambda n=node: len(n.wal))
        # Group-commit leverage: how many simulated fsyncs the log paid
        # and how many bytes each one carried (per-update logging sits
        # near the frame size; batching drives bytes/fsync up).
        reg.gauge_fn(f"{prefix}.wal.fsyncs", lambda n=node: n.wal.fsyncs)
        reg.gauge_fn(f"{prefix}.wal.bytes_per_fsync",
                     lambda n=node: n.wal.bytes_written / max(1, n.wal.fsyncs))
        reg.gauge_fn(f"{prefix}.wal.replay_dropped",
                     lambda n=node: n.wal_replay_dropped_total)
        reg.gauge_fn(f"{prefix}.wal.replay_skipped",
                     lambda n=node: n.wal_replay_skipped_total)
        reg.gauge_fn(f"{prefix}.forwarded_updates",
                     lambda n=node: n.forwarded_updates)
        reg.gauge_fn(f"{prefix}.stale_route_nacks",
                     lambda n=node: n.stale_route_nacks)
        reg.gauge_fn(f"{prefix}.route_epoch_seen",
                     lambda n=node: n.route_epoch_seen)
        reg.gauge_fn(f"{prefix}.disk.reads",
                     lambda n=node: n.machine.disk.stats.reads)
        reg.gauge_fn(f"{prefix}.disk.writes",
                     lambda n=node: n.machine.disk.stats.writes)
        reg.gauge_fn(f"{prefix}.result_cache.hits",
                     lambda n=node: n.result_cache_hits)
        reg.gauge_fn(f"{prefix}.result_cache.misses",
                     lambda n=node: n.result_cache_misses)
        reg.gauge_fn(f"{prefix}.partitions_pruned",
                     lambda n=node: n.prunes_validated)
        reg.gauge_fn(f"{prefix}.prune_fallbacks",
                     lambda n=node: n.prune_fallbacks)
        reg.gauge_fn(f"{prefix}.up", lambda n=node: n.endpoint.up)
        # Replication health (all zero at RF = 1): follower replicas
        # hosted here, records streamed out as a primary, and catch-up
        # rounds (snapshot installs or log re-sends) this node ran.
        reg.gauge_fn(f"{prefix}.repl.followers",
                     lambda n=node: len(n.followers))
        reg.gauge_fn(f"{prefix}.repl.streamed",
                     lambda n=node: n.repl_streamed)
        reg.gauge_fn(f"{prefix}.repl.catchups",
                     lambda n=node: n.repl_catchups)
        # Per-tier byte accounting (the memory-tier table `repro profile`
        # and `repro status` render) plus tiering health counters.
        reg.gauge_fn(f"{prefix}.cache.pending_bytes",
                     lambda n=node: n.cache.estimated_bytes())
        reg.gauge_fn(f"{prefix}.cache.flush_commits",
                     lambda n=node: n.cache.stats.flush_commits)
        reg.gauge_fn(f"{prefix}.tier.frozen", lambda n=node: len(n.frozen))
        reg.gauge_fn(f"{prefix}.tier.frozen_bytes",
                     lambda n=node: n.frozen_bytes())
        reg.gauge_fn(f"{prefix}.tier.segment_cache_bytes",
                     lambda n=node: n.segment_cache.estimated_bytes())
        reg.gauge_fn(f"{prefix}.tier.segment_cache_hit_rate",
                     lambda n=node: n.segment_cache.stats.hit_rate())
        reg.gauge_fn(f"{prefix}.tier.freezes", lambda n=node: n.tier_freezes)
        reg.gauge_fn(f"{prefix}.tier.thaws", lambda n=node: n.tier_thaws)
        reg.gauge_fn(f"{prefix}.tier.hydrations",
                     lambda n=node: n.tier_hydrations)
        reg.gauge_fn(f"{prefix}.tier.fallbacks",
                     lambda n=node: n.tier_fallbacks)
        reg.gauge_fn(f"{prefix}.tier.summary_prunes",
                     lambda n=node: n.tier_summary_prunes)
        reg.gauge_fn(f"{prefix}.tier.repairs", lambda n=node: n.tier_repairs)

    def _wire_tracer(self, tracer) -> None:
        self.tracer = tracer
        self.rpc.tracer = tracer
        self.master.tracer = tracer
        self.master.machine.disk.tracer = tracer
        # The journal stamps the active span id onto every event, and
        # the SLO tracker wraps its alerts in a span of their own.
        self.journal.tracer = tracer
        self.slos.tracer = tracer
        for node in self.index_nodes.values():
            node.set_tracer(tracer)
        for client in self._clients:
            client.tracer = tracer

    def enable_tracing(self, tracer: Optional[Tracer] = None) -> Tracer:
        """Thread a span tracer through every component and return it.

        Tracing charges zero simulated time — only Python-side
        bookkeeping — so enabling it never changes benchmark numbers.
        """
        tracer = tracer if tracer is not None else Tracer(
            self.clock, registry=self.registry)
        self._wire_tracer(tracer)
        return tracer

    def disable_tracing(self) -> None:
        """Swap the no-op tracer back in everywhere."""
        self._wire_tracer(NULL_TRACER)

    def enable_timeline(self, interval_s: float = 1.0,
                        timeline: Optional[TimelineRecorder] = None) -> TimelineRecorder:
        """Record per-metric time series as virtual time advances.

        The default series are the ones the paper's figures track over
        time: dirty-partition backlog, per-node load skew, cache hit
        rate, indexed files, and failovers.  Sampling is driven from
        :meth:`pump`/:meth:`advance` and charges zero simulated time, so
        (like tracing) enabling a timeline never changes benchmark
        numbers.
        """
        timeline = timeline if timeline is not None else TimelineRecorder(
            self.clock, interval_s=interval_s)
        timeline.track("dirty_backlog", self._dirty_backlog)
        timeline.track("load_skew", self._load_skew)
        timeline.track("cache_hit_rate", self._cache_hit_rate)
        timeline.track("indexed_files", self.total_indexed_files)
        timeline.track("failovers", self._failover_count)
        timeline.track("degraded_searches",
                       lambda: self._counter_value("cluster.client.degraded_searches"))
        timeline.track("rpc_retries",
                       lambda: self._counter_value("cluster.rpc.retries"))
        self.timeline = timeline
        return timeline

    def disable_timeline(self) -> None:
        """Swap the no-op timeline back in (recorded series are dropped)."""
        self.timeline = NULL_TIMELINE

    def enable_freshness(self, tracker: Optional[FreshnessTracker] = None) -> FreshnessTracker:
        """Track change-to-search-visible staleness on every node.

        Clients stamp close/update events; Index Nodes resolve them when
        the update commits into real indices.  Zero simulated cost.
        """
        tracker = tracker if tracker is not None else FreshnessTracker(self.registry)
        self.freshness = tracker
        for node in self.index_nodes.values():
            node.freshness = tracker
        for client in self._clients:
            client.set_freshness(tracker)
        return tracker

    def disable_freshness(self) -> None:
        """Swap the no-op freshness tracker back in everywhere."""
        self.freshness = NULL_FRESHNESS
        for node in self.index_nodes.values():
            node.freshness = NULL_FRESHNESS
        for client in self._clients:
            client.set_freshness(NULL_FRESHNESS)

    # Timeline sources: each reads live state the deployment already
    # maintains, so sampling can never drift from ground truth.

    def _dirty_backlog(self) -> int:
        """Updates sitting in Index Caches, not yet in real indices."""
        return sum(len(node.cache) for node in self.index_nodes.values()
                   if node.endpoint.up)

    def _load_skew(self) -> float:
        """Max-over-mean indexed files across live nodes (1.0 = balanced)."""
        counts = [sum(r.file_count for r in node.replicas.values())
                  for node in self.index_nodes.values() if node.endpoint.up]
        if not counts or not sum(counts):
            return 1.0
        return max(counts) / (sum(counts) / len(counts))

    def _cache_hit_rate(self) -> float:
        """Aggregate page-cache hit rate over the Index Node machines."""
        hits = accesses = 0
        for node in self.index_nodes.values():
            stats = node.machine.page_cache.stats
            hits += stats.hits
            accesses += stats.accesses
        return hits / accesses if accesses else 0.0

    def _failover_count(self) -> int:
        return self._counter_value("cluster.master.failovers")

    def _route_rpcs_per_update(self) -> float:
        """Master routing round-trips per update actually indexed — the
        Figure-9 hot-path cost; the epoch protocol drives it toward
        1/batch-size ÷ slab-size territory."""
        updates = sum(c.updates_sent for c in self._clients)
        return self._counter_value("cluster.master.route_rpcs") / max(1, updates)

    def _route_cache_hit_rate(self) -> float:
        hits = sum(c.route_cache_hits for c in self._clients)
        misses = sum(c.route_cache_misses for c in self._clients)
        return hits / (hits + misses) if hits + misses else 0.0

    def _result_cache_hit_rate(self) -> float:
        """Aggregate per-ACG query-result-cache hit rate across nodes."""
        hits = sum(n.result_cache_hits for n in self.index_nodes.values())
        misses = sum(n.result_cache_misses for n in self.index_nodes.values())
        return hits / (hits + misses) if hits + misses else 0.0

    def _segment_cache_hit_rate(self) -> float:
        """Aggregate segment-cache hit rate across nodes (tiering on)."""
        hits = sum(n.segment_cache.stats.hits
                   for n in self.index_nodes.values())
        misses = sum(n.segment_cache.stats.misses
                     for n in self.index_nodes.values())
        return hits / (hits + misses) if hits + misses else 0.0

    def memory_tiers(self) -> List[Dict[str, object]]:
        """Per-node byte accounting across the storage tiers — the table
        ``repro profile`` and ``repro status`` render.

        Tiers per node: live resident replicas (RAM), the hydrated
        segment cache (RAM), the uncommitted index-cache buffer (RAM),
        the WAL (local disk), and frozen segments (cold object store).
        """
        rows: List[Dict[str, object]] = []
        for name in sorted(self.index_nodes):
            node = self.index_nodes[name]
            rows.append({
                "node": name,
                "ram_budget": node.machine.spec.ram_bytes,
                "resident": node._resident_bytes,
                "segment_cache": node.segment_cache.estimated_bytes(),
                "index_cache": node.cache.estimated_bytes(),
                "wal": len(node.wal),
                "frozen": node.frozen_bytes(),
                "frozen_acgs": len(node.frozen),
            })
        return rows

    def _route_epoch_age(self) -> int:
        """How many epochs behind the most-stale client cache runs."""
        current = self.master.partitions.epoch
        if not self._clients:
            return 0
        return max(current - c._route_epoch for c in self._clients)

    def _counter_value(self, name: str) -> int:
        return self.registry.value(name) if name in self.registry else 0

    # -- background machinery -------------------------------------------------

    def _tick_caches(self) -> None:
        for node in self.index_nodes.values():
            if node.endpoint.up:
                node.tick()
        # Reap freshness stamps whose updates died with a failed node
        # (acked, never committed anywhere) so the pending map can't leak.
        self.freshness.expire(self.clock.now())

    def _poll_heartbeats(self) -> List[str]:
        """One heartbeat round, acting Master first.

        The order is the split-brain settler: the acting Master's
        term-stamped polls teach every node the newest term, so when a
        deposed-but-alive Master (restarted from its own log, or back
        from a partition) polls right after, its stale stamp is fenced
        and it self-deposes — one heartbeat period bounds the window in
        which two processes both believe they are acting."""
        result: List[str] = []
        if self.master.endpoint.up:
            result = self.master.poll_heartbeats()
        for m in self.masters:
            if m is not self.master and m.acting and m.endpoint.up:
                m.poll_heartbeats()
        return result

    def _standby_ticks(self) -> None:
        """Drive every non-acting Master's lease/tail heartbeat."""
        for m in self.masters:
            if not m.acting and m.endpoint.up:
                m.standby_tick()

    def _master_promoted(self, master: MasterNode) -> None:
        """Re-point the deployment at a freshly promoted Master."""
        self.master = master
        self.health.master = master

    def crash_master(self) -> None:
        """Kill the acting Master process (fault injection).

        In-memory soft state dies with it; the meta-WAL survives as its
        durable state.  Clients and the standby see ``NodeDown`` until
        :meth:`restart_master` (or a standby promotion) brings an acting
        Master back."""
        victim = self.master
        victim.endpoint.fail()
        self.journal.emit("node.crash", node=victim.endpoint.name,
                          mode="master_process")

    def restart_master(self, name: Optional[str] = None) -> None:
        """Restart a crashed Master from its meta-WAL.

        The replayed term record decides its role: if a standby promoted
        past it while it was down, the restarted Master still *believes*
        it is acting (its own log says so) — the next term-stamped
        heartbeat round fences it and it rejoins as a standby.  That is
        the designed path, not an error: fencing, not the supervisor, is
        what makes the hand-off safe."""
        for m in self.masters:
            if name is not None and m.endpoint.name != name:
                continue
            if not m.endpoint.up:
                m.endpoint.recover()
                m.crash_restart()

    def _standby_lag(self) -> Optional[int]:
        """Meta-log records the furthest-behind live standby still has
        to apply (None when no live standby exists)."""
        lags = [self.master.meta_wal.seq - (m._tail_seq or 0)
                for m in self.masters
                if m is not self.master and not m.acting and m.endpoint.up]
        return max(lags) if lags else None

    def master_status(self) -> Dict[str, object]:
        """JSON-ready control-plane snapshot: term, roles, standby lag,
        and the failover/fencing counters."""
        fences = sum(n.master_fences for n in self.index_nodes.values())
        return {
            "term": self.master.term,
            "acting": self.master.endpoint.name,
            "roles": {
                m.endpoint.name: {
                    "role": "acting" if m.acting else "standby",
                    "up": m.endpoint.up,
                    "term": m.term,
                }
                for m in self.masters
            },
            "meta_wal_seq": self.master.meta_wal.seq,
            "standby_lag": self._standby_lag(),
            "promotions": self._counter_value(
                "cluster.master.standby_promotions"),
            "deposed": self._counter_value("cluster.master.deposed"),
            "restarts": self._counter_value("cluster.master.restarts"),
            "fences": fences,
        }

    def _checkpoint_all(self) -> None:
        """Periodic durability: Master metadata (partition records plus
        the meta-WAL snapshot — see ``MasterNode.checkpoint``) and every
        node's ACGs go to the shared file system."""
        if self.master.endpoint.up and self.master.acting:
            self.master.checkpoint()
        for node in self.index_nodes.values():
            if node.endpoint.up:
                node.checkpoint_to_shared()

    def fail_node(self, name: str) -> None:
        """Kill one Index Node (fault injection); its ACGs stay on shared
        storage until :meth:`failover` reassigns them."""
        self.index_nodes[name].endpoint.fail()
        # Endpoint-only kill (process state survives) — distinct from
        # IndexNode.crash(), which journals its own node.crash.
        self.journal.emit("node.crash", node=name, mode="endpoint_down")

    def failover(self, name: str) -> int:
        """Checkpoint-based failover of a dead node's partitions."""
        return self.master.failover(name)

    def recover_node(self, name: str) -> int:
        """Bring a failed Index Node back into the cluster.

        Two distinct cases, decided by what happened while it was down:

        * the Master never failed it over (it is still registered) — a
          plain process restart: replay the WAL and carry on with the
          data it already had; or
        * failover already moved its partitions to survivors — the node
          must **rejoin empty** (its replicas are stale copies of data
          now live elsewhere; serving or counting them would double-count
          every failed-over file).  :meth:`IndexNode.reset` wipes it, and
          it re-registers to take new assignments.

        Returns the number of WAL records replayed (always 0 on the
        rejoin path — a rejoin starts from nothing).
        """
        node = self.index_nodes[name]
        if name in self.master.index_nodes:
            if node.endpoint.up:
                return 0
            return node.restart()
        node.reset()
        node.endpoint.recover()
        self.master.register_index_node(name)
        self.journal.emit("node.rejoin", node=name)
        self.registry.counter("cluster.master.rejoins").inc()
        return 0

    def pump(self) -> None:
        """Let background timers that are due fire (no time advance)."""
        self.loop.run_due()
        self.timeline.sample_if_due()
        self.slos.sample_if_due()
        self.health.sample_if_due()

    def advance(self, seconds: float) -> None:
        """Advance virtual time, firing background work along the way.

        With a timeline enabled the advance is chunked at sample-interval
        boundaries so long sleeps still produce evenly spaced points;
        each chunk is the same ``run_until`` a plain advance performs, so
        the simulated timeline of events is identical either way.  The
        SLO/health sampling hooks charge zero simulated time, so they
        never alter the event schedule either.
        """
        target = self.clock.now() + seconds
        if self.timeline.enabled:
            step = self.timeline.interval_s
            while self.clock.now() < target:
                # Work inside run_until may push the clock past the chunk
                # boundary; always aim at least at the current instant.
                chunk = max(self.clock.now(), min(target, self.clock.now() + step))
                self.loop.run_until(chunk)
                self.timeline.sample_if_due()
                self.slos.sample_if_due()
                self.health.sample_if_due()
            self.timeline.sample_if_due()
        else:
            self.loop.run_until(target)
        self.slos.sample_if_due()
        self.health.sample_if_due()

    # -- clients -------------------------------------------------------------------

    def make_client(self, pid_filter: Optional[Set[int]] = None,
                    batch_size: int = 128) -> PropellerClient:
        """Attach a new client to the shared VFS and cluster.

        Under replication (RF > 1) the client gets a hedging policy, so
        its search legs race follower replicas after a p95-derived timer.
        """
        hedging = None
        if self.replication_factor > 1:
            from repro.replication import HedgePolicy
            hedging = HedgePolicy(self.registry)
        client = PropellerClient(
            self.vfs, self.rpc,
            master=self.master.endpoint.name,
            batch_size=batch_size,
            pid_filter=pid_filter,
            local=self.single_node,
            pump=self.pump,
            hedging=hedging,
            masters=[m.endpoint.name for m in self.masters],
        )
        client.tracer = self.tracer
        client.registry = self.registry
        client.journal = self.journal
        client.batching = self.batching
        client.set_freshness(self.freshness)
        self._clients.append(client)
        return client

    def set_batching(self, enabled: bool) -> None:
        """Flip the hot-path batching stack service-wide: group-commit
        WAL + bulk apply on every Index Node, vectorized posting-list
        intersection on the query side, and client-side update
        coalescing.  ``False`` restores the legacy per-op path
        byte-for-byte — the chaos bit-determinism baseline."""
        self.batching = enabled
        for node in self.index_nodes.values():
            node.group_commit = enabled
            node.vectorized_postings = enabled
        for client in self._clients:
            client.batching = enabled

    def set_tiering(self, enabled: bool, freeze_age_s: Optional[float] = None,
                    cache_budget_bytes: Optional[int] = None,
                    min_bytes: Optional[int] = None) -> None:
        """Flip tiered index storage service-wide.

        Enabled: every Index Node's background tick freezes cold
        partitions into compressed segments on the shared simulated
        object store, searches against them go summary → segment cache →
        hydrate, and writes thaw them back to the live path.
        ``freeze_age_s`` tunes the idle age the tier policy requires
        before freezing; ``cache_budget_bytes`` resizes each node's
        segment cache; ``min_bytes`` lowers the size floor below which
        freezing is not worth the request cost (small deployments and
        the chaos harness want tiny partitions to qualify).  ``False``
        (the default state) thaws everything
        and restores the legacy path byte-for-byte — the chaos
        bit-determinism baseline.
        """
        self.tiering = enabled
        for name in sorted(self.index_nodes):
            node = self.index_nodes[name]
            node.tiering = enabled
            if freeze_age_s is not None:
                node.tier_policy.freeze_age_s = freeze_age_s
            if min_bytes is not None:
                node.tier_policy.min_bytes = min_bytes
            if cache_budget_bytes is not None:
                node.segment_cache.resize(cache_budget_bytes)
            if not enabled:
                for acg_id in sorted(node.frozen):
                    node._thaw(acg_id, reason="tiering_off")

    # -- convenience -----------------------------------------------------------------

    def total_indexed_files(self) -> int:
        """Files indexed on *live* nodes (a failed node's stale replicas
        do not count — after failover their data lives elsewhere)."""
        return sum(replica.file_count
                   for node in self.index_nodes.values()
                   if node.endpoint.up
                   for replica in node.replicas.values())

    def acg_count(self) -> int:
        """Number of partitions (ACGs) the Master tracks."""
        return len(self.master.partitions)

    def drop_caches(self) -> None:
        """Cold-start every machine (before 'cold query' measurements)."""
        self.cluster.drop_caches()
        for node in self.index_nodes.values():
            node.drop_resident()

    def commit_all(self) -> None:
        """Flush every client batch and every Index Node cache."""
        for client in self._clients:
            client.flush_updates()
        for node in self.index_nodes.values():
            node.cache.commit_all()

    def sync_replication(self) -> None:
        """Drive follower replicas to convergence (no-op at RF = 1).

        Deterministic: retries any follower-set assignments the Master
        could not deliver, then has every live primary bootstrap/stream
        each of its replicated partitions in sorted order.  The chaos
        harness calls this before checking the ``replicas-converge``
        invariant — steady-state heartbeats and ticks do the same work
        incrementally."""
        if self.replication_factor <= 1:
            return
        self.master._retry_follower_syncs()
        for name in sorted(self.index_nodes):
            node = self.index_nodes[name]
            if not node.endpoint.up:
                continue
            for acg_id in sorted(node.repl):
                node._sync_followers(acg_id)

    # Registry-name → stats()-key mapping for one Index Node: stats() is
    # now a *view* over the metrics registry, so operators, exporters and
    # this method all read the same instruments.
    _NODE_STAT_KEYS = (
        ("acgs", "acgs"),
        ("files", "files"),
        ("resident_bytes", "resident_bytes"),
        ("cache_pending", "cache.pending"),
        ("cache_timeout_commits", "cache.timeout_commits"),
        ("cache_search_commits", "cache.search_commits"),
        ("wal_bytes", "wal.bytes"),
        ("wal_replay_dropped", "wal.replay_dropped"),
        ("disk_reads", "disk.reads"),
        ("disk_writes", "disk.writes"),
        ("up", "up"),
    )

    def stats(self) -> Dict[str, object]:
        """A structured snapshot of the whole deployment's health:
        partition layout, per-node cache/WAL/disk counters, and network
        traffic.  Used by operators (and the CLI) to see where load
        lands.

        Every value is read from the metrics registry (the keys are
        unchanged from before the registry existed); ``repro.obs.export``
        renders the same instruments as tables or JSON.
        """
        value = self.registry.value
        nodes = {
            name: {key: value(f"cluster.{name}.{metric}")
                   for key, metric in self._NODE_STAT_KEYS}
            for name in self.index_nodes
        }
        return {
            "virtual_time_s": value("cluster.virtual_time_s"),
            "partitions": value("cluster.master.partitions"),
            "indexed_files": value("cluster.indexed_files"),
            "splits": value("cluster.master.split_decisions"),
            "checkpoints": value("cluster.master.checkpoints_written"),
            "network_messages": value("cluster.network.messages"),
            "network_bytes": value("cluster.network.bytes_sent"),
            "nodes": nodes,
        }

    def status(self, events_tail: int = 10) -> Dict[str, object]:
        """The health-plane snapshot ``repro status`` renders: cluster
        verdict + gauges, per-SLO burn state, deployment stats, and the
        journal's most recent events.  JSON-ready."""
        self.slos.sample_if_due()
        return {
            "health": self.health.summary(),
            "slo": self.slos.summary(),
            "master": self.master_status(),
            "stats": self.stats(),
            "tiers": self.memory_tiers(),
            "journal": self.journal.digest(),
            "events": [e.to_dict() for e in self.journal.tail(events_tail)],
        }
