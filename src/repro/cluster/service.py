"""Service façade: wires a whole Propeller deployment together.

One call builds the paper's testbed in simulation: a Master Node machine,
``num_index_nodes`` Index Node machines behind a simulated gigabit switch,
the periodic background work (cache-timeout commits, heartbeats, Master
metadata checkpoints), and clients mounting the shared VFS.  Single-node
mode co-locates the Master and one Index Node on the same machine with
loopback RPC — the configuration used for the MySQL and Spotlight
comparisons.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.cluster.client import PropellerClient
from repro.cluster.index_node import IndexNode
from repro.cluster.master import MasterNode
from repro.core.partitioner import PartitioningPolicy
from repro.fs.vfs import VirtualFileSystem
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop, PeriodicTask
from repro.sim.machine import Cluster, MachineSpec
from repro.sim.rpc import RpcNetwork

HEARTBEAT_PERIOD_S = 5.0
CHECKPOINT_PERIOD_S = 30.0


class PropellerService:
    """A running Propeller deployment (simulated)."""

    def __init__(self, num_index_nodes: int = 1,
                 spec: Optional[MachineSpec] = None,
                 policy: Optional[PartitioningPolicy] = None,
                 cache_timeout_s: float = 5.0,
                 single_node: bool = False) -> None:
        if num_index_nodes < 1:
            raise ValueError("need at least one index node")
        self.policy = policy if policy is not None else PartitioningPolicy()
        self.single_node = single_node and num_index_nodes == 1
        index_node_names = [f"in{i}" for i in range(1, num_index_nodes + 1)]
        machine_names = index_node_names if self.single_node else (["mn"] + index_node_names)
        self.cluster = Cluster(machine_names, spec=spec)
        self.clock: SimClock = self.cluster.clock
        self.loop = EventLoop(self.clock)
        self.rpc = RpcNetwork(self.cluster.network)
        master_machine = self.cluster["in1"] if self.single_node else self.cluster["mn"]
        self.master = MasterNode(master_machine, self.rpc, policy=self.policy)
        self.index_nodes: Dict[str, IndexNode] = {}
        for name in index_node_names:
            node = IndexNode(name, self.cluster[name], cache_timeout_s=cache_timeout_s)
            self.rpc.add_endpoint(node.endpoint)
            self.master.register_index_node(name)
            self.index_nodes[name] = node
        self.vfs = VirtualFileSystem(self.clock)
        for node in self.index_nodes.values():
            node.shared_vfs = self.vfs
        self._clients: List[PropellerClient] = []
        self._tasks = [
            PeriodicTask(self.loop, cache_timeout_s / 2, self._tick_caches),
            PeriodicTask(self.loop, HEARTBEAT_PERIOD_S, self.master.poll_heartbeats),
            PeriodicTask(self.loop, CHECKPOINT_PERIOD_S, self._checkpoint_all),
        ]

    # -- background machinery -------------------------------------------------

    def _tick_caches(self) -> None:
        for node in self.index_nodes.values():
            node.tick()

    def _checkpoint_all(self) -> None:
        """Periodic durability: Master metadata plus every node's ACGs
        go to the shared file system."""
        self.master.checkpoint()
        for node in self.index_nodes.values():
            if node.endpoint.up:
                node.checkpoint_to_shared()

    def fail_node(self, name: str) -> None:
        """Kill one Index Node (fault injection); its ACGs stay on shared
        storage until :meth:`failover` reassigns them."""
        self.index_nodes[name].endpoint.fail()

    def failover(self, name: str) -> int:
        """Checkpoint-based failover of a dead node's partitions."""
        return self.master.failover(name)

    def pump(self) -> None:
        """Let background timers that are due fire (no time advance)."""
        self.loop.run_due()

    def advance(self, seconds: float) -> None:
        """Advance virtual time, firing background work along the way."""
        self.loop.run_until(self.clock.now() + seconds)

    # -- clients -------------------------------------------------------------------

    def make_client(self, pid_filter: Optional[Set[int]] = None,
                    batch_size: int = 128) -> PropellerClient:
        """Attach a new client to the shared VFS and cluster."""
        client = PropellerClient(
            self.vfs, self.rpc,
            batch_size=batch_size,
            pid_filter=pid_filter,
            local=self.single_node,
            pump=self.pump,
        )
        self._clients.append(client)
        return client

    # -- convenience -----------------------------------------------------------------

    def total_indexed_files(self) -> int:
        """Files indexed on *live* nodes (a failed node's stale replicas
        do not count — after failover their data lives elsewhere)."""
        return sum(replica.file_count
                   for node in self.index_nodes.values()
                   if node.endpoint.up
                   for replica in node.replicas.values())

    def acg_count(self) -> int:
        """Number of partitions (ACGs) the Master tracks."""
        return len(self.master.partitions)

    def drop_caches(self) -> None:
        """Cold-start every machine (before 'cold query' measurements)."""
        self.cluster.drop_caches()
        for node in self.index_nodes.values():
            node.drop_resident()

    def commit_all(self) -> None:
        """Flush every client batch and every Index Node cache."""
        for client in self._clients:
            client.flush_updates()
        for node in self.index_nodes.values():
            node.cache.commit_all()

    def stats(self) -> Dict[str, object]:
        """A structured snapshot of the whole deployment's health:
        partition layout, per-node cache/WAL/disk counters, and network
        traffic.  Used by operators (and the CLI) to see where load
        lands."""
        nodes = {}
        for name, node in self.index_nodes.items():
            nodes[name] = {
                "acgs": len(node.replicas),
                "files": sum(r.file_count for r in node.replicas.values()),
                "resident_bytes": node._resident_bytes,
                "cache_pending": len(node.cache),
                "cache_timeout_commits": node.cache.stats.timeout_commits,
                "cache_search_commits": node.cache.stats.search_commits,
                "wal_bytes": len(node.wal),
                "disk_reads": node.machine.disk.stats.reads,
                "disk_writes": node.machine.disk.stats.writes,
                "up": node.endpoint.up,
            }
        return {
            "virtual_time_s": self.clock.now(),
            "partitions": len(self.master.partitions),
            "indexed_files": self.total_indexed_files(),
            "splits": len(self.master.splits),
            "checkpoints": self.master.checkpoints_written,
            "network_messages": self.cluster.network.stats.messages,
            "network_bytes": self.cluster.network.stats.bytes_sent,
            "nodes": nodes,
        }
