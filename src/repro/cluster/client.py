"""Propeller client.

Lives on each client machine (Figure 5): the File Access Management module
(an observer of the shared VFS) builds the per-client ACG in RAM; the File
Query Engine turns query strings — API form or query-directory form — into
predicate ASTs and fans search requests out to the Index Nodes the Master
names, in parallel; file-indexing requests go out in batches (the paper's
evaluation uses a batch size of 128) after a routing round-trip to the
Master.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cluster.messages import (IndexUpdate, RouteEntry, RouteTable,
                                    SearchResult, UpdateBatch, UpdateOp)
from repro.errors import (ClusterError, NodeDown, NotActingMaster,
                          RpcTimeout, StaleMasterTerm, StaleRoute)
from repro.fs.interceptor import FileAccessManager
from repro.obs.freshness import NULL_FRESHNESS
from repro.obs.journal import NULL_JOURNAL
from repro.obs.tracing import NULL_TRACER
from repro.fs.namespace import Inode
from repro.fs.vfs import VirtualFileSystem
from repro.indexstructures.base import IndexKind
from repro.query.ast import Predicate
from repro.query.executor import DEGRADABLE_ERRORS, FanoutOutcome, scatter_gather
from repro.query.summary import SummarySnapshot, summary_may_match
from repro.query.parser import parse_query, parse_query_directory
from repro.query.planner import IndexSpec
from repro.replication.hedging import HedgedReply, HedgePolicy
from repro.sim.rpc import CallOutcome, HedgedOutcome, RpcNetwork

DEFAULT_BATCH_SIZE = 128

# Oldest-entry age (virtual seconds) past which an enqueue flushes the
# update queue even when it is not full.  Matches the Index Node cache's
# commit window: holding updates longer than the server-side batching
# horizon buys no further amortization, it only delays visibility.
DEFAULT_BATCH_AGE_S = 5.0

_INODE_ATTRS = ("size", "mtime", "ctime", "uid")

# How many empty partitions a client grabs per allocation round-trip.
# Bigger slabs amortize the Master RPC over more locally-placed files;
# the Master spreads each slab across Index Nodes exactly the way its
# own per-file placement would.
_ALLOC_BATCH = 4

# Minimum virtual seconds between summary-table polls.  Summaries only
# change on heartbeat delivery (every ~5 s), so polling faster buys
# nothing; the fresh-marker protocol makes the poll itself nearly free.
_SUMMARY_REFRESH_MIN_S = 5.0


@dataclass
class SearchAnswer:
    """A search's paths plus its availability verdict.

    ``degraded`` is True when at least one Index Node could not serve its
    share after retries; ``unreachable_partitions`` then names exactly
    which ACGs the answer is missing, and ``unreachable_nodes`` which
    nodes failed.  A non-degraded answer is complete.

    ``partial`` is True only under the opt-in ``deadline_s`` semantics:
    a hedged leg was answered by a follower replica that had not yet
    applied this client's latest acknowledged writes.  The answer is a
    consistent-but-stale view of ``lagging_partitions``; everything else
    is current.  A lagging answer is only accepted if it arrived within
    ``deadline_s`` of the search's start; without a deadline (or past
    it) a lagging replica is never used, so ``partial`` stays False.
    """

    paths: List[str] = field(default_factory=list)
    degraded: bool = False
    unreachable_partitions: List[int] = field(default_factory=list)
    unreachable_nodes: List[str] = field(default_factory=list)
    partial: bool = False
    lagging_partitions: List[int] = field(default_factory=list)


class PropellerClient:
    """One client's view of the Propeller service."""

    def __init__(self, vfs: VirtualFileSystem, rpc: RpcNetwork,
                 master: str = "master", batch_size: int = DEFAULT_BATCH_SIZE,
                 pid_filter: Optional[Set[int]] = None,
                 local: bool = False,
                 pump: Optional[Callable[[], None]] = None,
                 hedging: Optional[HedgePolicy] = None,
                 masters: Optional[Sequence[str]] = None) -> None:
        self.vfs = vfs
        self.rpc = rpc
        self.master = master
        # Every Master endpoint this client may re-home to.  With a warm
        # standby deployed, a MasterDown/timeout or a not-acting NACK on
        # one endpoint retries the call against the others and re-homes
        # to whichever answered (the acting Master after a promotion).
        self.master_candidates: Tuple[str, ...] = (
            tuple(masters) if masters else (master,))
        self.master_rehomes = 0
        self.batch_size = batch_size
        # Update coalescing (the group-commit feed): with batching on,
        # queued updates for one file fold into the newest (upserts
        # carry complete attribute snapshots, so folding is lossless)
        # and per-ACG groups travel as one UpdateBatch envelope; the
        # queue flushes on size *or* age so a trickle never sits
        # unsent past the server's commit window.  False reproduces
        # the legacy per-append path byte-for-byte.
        self.batching = True
        self.batch_age_s = DEFAULT_BATCH_AGE_S
        self._pending_since: Optional[float] = None
        self.local = local
        # Tail-tolerant search (RF > 1): a policy object makes each
        # search leg race a follower replica after a p95-derived timer.
        # None (the default) keeps the fan-out single-copy.
        self.hedging = hedging
        # Background timers (cache commits, heartbeats, checkpoints) fire
        # when virtual time advances (service.advance / pump) — never
        # inside a request, because background I/O runs concurrently with
        # foreground requests on real deployments and must not inflate a
        # measured request's latency on the single simulation clock.
        self._pump = pump if pump is not None else (lambda: None)
        self.access_manager = FileAccessManager(
            on_create=self._on_create,
            on_unlink=self._on_unlink,
            on_rename=self._on_rename,
            pid_filter=pid_filter,
        )
        vfs.add_observer(self.access_manager)
        self._pending: List[Tuple[int, IndexUpdate]] = []  # (hint, update)
        # -- client-side route cache (the routing-epoch protocol) -------------
        # The Master serves a versioned route table; this cache routes
        # update batches and search fan-outs locally, refreshing only
        # when an Index Node NACKs a stale epoch.  ``_route_nodes`` and
        # ``_route_sizes`` mirror the Master's partition→node map and its
        # view of each partition's file count; ``_file_routes`` /
        # ``_acg_files`` hold the per-file routes this client placed or
        # learned; ``_stale_files`` are files whose cached route was
        # invalidated (they must re-learn their home from the Master).
        self._route_epoch = 0
        self._cluster_target = 0
        self._route_nodes: Dict[int, Optional[str]] = {}
        self._route_sizes: Dict[int, int] = {}
        # Follower replicas per partition (RF > 1): the candidate targets
        # a search leg may hedge to.  Staleness is harmless — a wrong
        # entry just costs a failed hedge leg, never a wrong answer.
        self._route_replicas: Dict[int, Tuple[str, ...]] = {}
        # Read-your-writes watermark: the newest replication sequence
        # each partition's primary acked to *this* client.  A follower
        # answer below this mark is "lagging" and only usable under the
        # opt-in partial-results deadline.
        self._repl_seq_seen: Dict[int, int] = {}
        # Partitions the most recent search answered from a lagging
        # replica (deadline opt-in only) — surfaced by search_detailed.
        self._last_lagging: List[int] = []
        self._file_routes: Dict[int, int] = {}
        self._acg_files: Dict[int, Set[int]] = {}
        self._stale_files: Set[int] = set()
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        self.stale_route_nacks = 0
        self.route_refreshes = 0
        # -- summary cache (the search-pruning layer) ------------------------
        # Partition summaries (Bloom + zone maps) fetched from the
        # Master's versioned summary table; a search leg whose summary
        # proves it cannot match is *asked to be skipped* — the owning
        # node validates the skip against its live watermark, so a stale
        # entry here costs a fallback search, never a missed result.
        self._summaries: Dict[int, SummarySnapshot] = {}
        self._summary_version = 0
        self._summary_fetch_t: Optional[float] = None
        self.summary_refreshes = 0
        # Ops/testing knob: False forces every leg to be searched (the
        # unpruned fan-out), which oracles prove pruning lossless against.
        self.prune_searches = True
        self.searches_issued = 0
        self.updates_sent = 0
        self.updates_requeued = 0
        # Deletes whose Index Node was unreachable even after retries:
        # the index entry may outlive the file until an operator (or the
        # chaos checker) reconciles.  Kept so callers can see the debt.
        self.lost_deletes: List[int] = []
        # The availability verdict of the most recent search fan-out.
        self.last_outcome: FanoutOutcome = FanoutOutcome()
        # Observability (wired by the service): spans for the search
        # path, a registry for request-latency histograms.  Both charge
        # zero simulated time.
        self.tracer = NULL_TRACER
        self.registry = None
        self.freshness = NULL_FRESHNESS
        self.journal = NULL_JOURNAL
        # Namespace integration: listing "/scope/?query" on the VFS runs
        # the search through this client's File Query Engine.
        vfs.set_query_handler(self.search_directory)

    def set_freshness(self, tracker) -> None:
        """Thread one freshness tracker through this client and its File
        Access Management module (so close-after-write events stamp)."""
        self.freshness = tracker
        self.access_manager.freshness = tracker

    # -- master re-homing ---------------------------------------------------------

    def _master_call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Call the Master, re-homing across candidates on failure.

        The current home is tried first; a ``NodeDown``/``RpcTimeout``
        (crashed or partitioned Master, after the RPC layer's own retry
        budget) or a ``NotActingMaster``/``StaleMasterTerm`` NACK (the
        endpoint is a standby, or was deposed) moves on to the next
        candidate.  Success re-homes ``self.master`` so later calls go
        straight to the acting Master.  With a single candidate (the
        default deployment) this is exactly one ``rpc.call`` — the same
        call sequence as before standbys existed."""
        last_error: Optional[ClusterError] = None
        for name in (self.master,) + tuple(
                c for c in self.master_candidates if c != self.master):
            try:
                result = self.rpc.call(name, method, *args, **kwargs)
            except (NodeDown, RpcTimeout, NotActingMaster,
                    StaleMasterTerm) as exc:
                last_error = exc
                continue
            if name != self.master:
                self.master = name
                self.master_rehomes += 1
                if self.registry is not None:
                    self.registry.counter(
                        "cluster.client.master_rehomes").inc()
            return result
        assert last_error is not None
        raise last_error

    # -- route cache --------------------------------------------------------------

    def _note_route(self, hit: bool) -> None:
        if hit:
            self.route_cache_hits += 1
            if self.registry is not None:
                self.registry.counter("cluster.client.route_cache_hits").inc()
        else:
            self.route_cache_misses += 1
            if self.registry is not None:
                self.registry.counter("cluster.client.route_cache_misses").inc()

    def _note_nacks(self, count: int) -> None:
        self.stale_route_nacks += count
        if self.registry is not None:
            self.registry.counter("cluster.client.stale_route_nacks").inc(count)

    def _learn_ack(self, ack: Any) -> None:
        """Record the replication watermark from an index_update ack.

        Last-ack-wins on purpose (not max): a partition's replication log
        restarts after splits/merges/adoption, so the *newest* acked
        sequence — not the largest ever seen — is this client's
        read-your-writes mark for hedged follower reads."""
        seq = getattr(ack, "seq", 0)
        if seq:
            self._repl_seq_seen[ack.acg_id] = seq

    def _apply_route_table(self, table: RouteTable) -> None:
        if table.fresh:
            self._route_epoch = max(self._route_epoch, table.epoch)
            return
        self._cluster_target = table.cluster_target
        if table.full:
            # Snapshot: replace wholesale.  Per-file routes into ACGs we
            # can no longer vouch for go stale and re-learn their home
            # from the Master on their next flush.
            self._route_nodes.clear()
            self._route_sizes.clear()
            self._route_replicas.clear()
            self._stale_files.update(self._file_routes)
            self._file_routes.clear()
            self._acg_files.clear()
            for entry in table.entries:
                if entry.size < 0:
                    continue
                self._route_nodes[entry.acg_id] = entry.node
                self._route_sizes[entry.acg_id] = entry.size
                if entry.replicas:
                    self._route_replicas[entry.acg_id] = entry.replicas
            self._route_epoch = table.epoch
            return
        for entry in table.entries:
            if entry.size < 0:
                # Merged away: forget the partition and re-learn where
                # its files went.
                self._route_nodes.pop(entry.acg_id, None)
                self._route_sizes.pop(entry.acg_id, None)
                self._route_replicas.pop(entry.acg_id, None)
                self._invalidate_acg(entry.acg_id)
                continue
            known = entry.acg_id in self._route_sizes
            if known and self._route_sizes[entry.acg_id] != entry.size:
                # The partition changed shape (a split or merge moved
                # files): per-file routes into it may be wrong now.  A
                # pure node change (migration, failover) keeps them.
                self._invalidate_acg(entry.acg_id)
            self._route_nodes[entry.acg_id] = entry.node
            self._route_sizes[entry.acg_id] = entry.size
            if entry.replicas:
                self._route_replicas[entry.acg_id] = entry.replicas
            else:
                self._route_replicas.pop(entry.acg_id, None)
        self._route_epoch = table.epoch

    def _invalidate_acg(self, acg_id: int) -> None:
        for file_id in self._acg_files.pop(acg_id, set()):
            self._file_routes.pop(file_id, None)
            self._stale_files.add(file_id)

    def _refresh_routes(self) -> None:
        table: RouteTable = self._master_call(
            "route_table", self._route_epoch, local=self.local)
        self.route_refreshes += 1
        if self.registry is not None:
            self.registry.counter("cluster.client.route_refreshes").inc()
        self._apply_route_table(table)

    def _refresh_summaries(self) -> None:
        """Throttled poll of the Master's partition-summary table.

        Best-effort: a failed or skipped poll just leaves the cache as
        is — pruning decisions degrade to "search everything", which is
        always safe."""
        now = self.vfs.clock.now()
        if (self._summary_fetch_t is not None
                and now - self._summary_fetch_t < _SUMMARY_REFRESH_MIN_S):
            return
        try:
            table = self._master_call("summary_table",
                                      self._summary_version, local=self.local)
        except DEGRADABLE_ERRORS:
            return
        self._summary_fetch_t = now
        self.summary_refreshes += 1
        if self.registry is not None:
            self.registry.counter("cluster.client.summary_refreshes").inc()
        if table.fresh:
            return
        self._summary_version = table.version
        self._summaries = {s.acg_id: s for s in table.entries}

    def _learn_route(self, file_id: int, acg_id: int,
                     node: Optional[str] = None) -> None:
        old = self._file_routes.get(file_id)
        if old is not None and old != acg_id:
            self._acg_files.get(old, set()).discard(file_id)
        self._file_routes[file_id] = acg_id
        self._acg_files.setdefault(acg_id, set()).add(file_id)
        self._stale_files.discard(file_id)
        if node is not None and self._route_nodes.get(acg_id) != node:
            # A Master-routed answer is at least as fresh as our table:
            # adopt its placement (it may have just assigned a node to a
            # partition our table still shows unplaced).
            self._route_nodes[acg_id] = node
            self._route_sizes.setdefault(acg_id, 0)

    def _forget_file(self, file_id: int) -> None:
        acg_id = self._file_routes.pop(file_id, None)
        if acg_id is not None:
            self._acg_files.get(acg_id, set()).discard(file_id)
        self._stale_files.discard(file_id)

    def _locate_file(self, file_id: int) -> Tuple[Optional[Tuple[str, int]], bool]:
        """Presence probe for a file whose cached route was evicted by a
        full-table refresh: ask each Index Node which owned ACG holds it.

        Returns ``((node, acg_id) | None, scan_complete)``; an incomplete
        scan means some node was unreachable, so a miss must be treated
        as "the copy may still exist" rather than "never indexed".
        Deletes are rare and the evicted-route window rarer, so this
        fan-out stays off every hot path."""
        if not self._route_nodes:
            try:
                self._refresh_routes()
            except DEGRADABLE_ERRORS:
                return None, False
        if self.registry is not None:
            self.registry.counter("cluster.client.locate_probes").inc()
        complete = True
        for node in sorted({n for n in self._route_nodes.values() if n}):
            try:
                acg_id = self.rpc.call(node, "locate_file", file_id,
                                       local=self.local)
            except DEGRADABLE_ERRORS:
                complete = False
                continue
            if acg_id is not None:
                return (node, acg_id), complete
        return None, complete

    def _cache_size(self, acg_id: int) -> int:
        """A partition's effective size: the Master's reported count or
        the number of files this client itself routed there, whichever
        is larger."""
        return max(self._route_sizes.get(acg_id, 0),
                   len(self._acg_files.get(acg_id, ())))

    def _pick_open_acg(self) -> Optional[int]:
        """Mirror of the Master's placement rule: the smallest placed
        partition still under the clustering target (ties to the oldest)."""
        best: Optional[int] = None
        best_key: Optional[Tuple[int, int]] = None
        for acg_id, node in self._route_nodes.items():
            if not node:
                continue
            size = self._cache_size(acg_id)
            if size >= self._cluster_target:
                continue
            key = (size, acg_id)
            if best_key is None or key < best_key:
                best, best_key = acg_id, key
        return best

    def _resolve_local(self, update: IndexUpdate, hint: int,
                       alloc_state: Dict[str, bool]) -> Optional[int]:
        """Route one update through the cache; None means "ask the Master".

        New files without a placement hint are placed locally — into the
        smallest open cached partition, allocating a fresh slab from the
        Master when every cached partition is full.  Hinted files whose
        producer we cannot resolve locally defer to the Master so the
        ACG co-location rule is never silently broken."""
        file_id = update.file_id
        acg_id = self._file_routes.get(file_id)
        if acg_id is not None:
            return acg_id if self._route_nodes.get(acg_id) else None
        if file_id in self._stale_files or update.op is UpdateOp.DELETE:
            return None
        if hint != -1:
            hinted = self._file_routes.get(hint)
            if hinted is not None and self._route_nodes.get(hinted):
                self._learn_route(file_id, hinted)
                return hinted
            return None
        if self._cluster_target <= 0:
            return None
        acg_id = self._pick_open_acg()
        if acg_id is None and not alloc_state.get("failed"):
            try:
                self._apply_route_table(self._master_call(
                    "allocate_partitions", _ALLOC_BATCH,
                    self._route_epoch, local=self.local))
            except DEGRADABLE_ERRORS:
                alloc_state["failed"] = True
                return None
            acg_id = self._pick_open_acg()
        if acg_id is None:
            return None
        self._learn_route(file_id, acg_id)
        return acg_id

    # -- namespace-change callbacks (from File Access Management) ----------------

    def _on_create(self, path: str, inode: Inode) -> None:
        # Creation alone does not index a file — applications choose when
        # to index (Section IV's workflow) — but deletion must clean up,
        # which is why only _on_unlink talks to the Master here.
        return None

    def _on_unlink(self, path: str, inode: Inode) -> None:
        # Cancel any still-batched updates for this file: flushing an
        # upsert *after* the delete would resurrect a dead file.
        self._pending = [(h, u) for h, u in self._pending
                         if u.file_id != inode.ino]
        cached_acg = self._file_routes.get(inode.ino)
        try:
            route: Optional[RouteEntry] = self._master_call(
                "file_deleted", inode.ino, local=self.local)
        except DEGRADABLE_ERRORS:
            # The Master itself was unreachable: the mapping (and maybe an
            # index entry) survives the file.  Record the debt — the
            # unlink must not fail because bookkeeping did.
            self.lost_deletes.append(inode.ino)
            self.freshness.forget(inode.ino)
            if self.registry is not None:
                self.registry.counter("cluster.client.lost_deletes").inc()
            return
        # Prefer the Master's answer; fall back to the route cache for
        # client-placed files the Master never learned about.
        if route is not None and route.node:
            target_node, target_acg = route.node, route.acg_id
        elif cached_acg is not None and self._route_nodes.get(cached_acg):
            target_node, target_acg = self._route_nodes[cached_acg], cached_acg
        elif inode.ino in self._stale_files:
            # The Master never learned this client-placed file and a
            # full-table refresh evicted its route — but it WAS indexed,
            # so its copy is still out there.  Locate it before the
            # delete has nowhere to go and the entry quietly survives.
            located, complete = self._locate_file(inode.ino)
            if located is None:
                self.freshness.forget(inode.ino)
                self._forget_file(inode.ino)
                if not complete:
                    # A node we could not reach may hold the copy: record
                    # the debt rather than pretending the delete landed.
                    self.lost_deletes.append(inode.ino)
                    if self.registry is not None:
                        self.registry.counter(
                            "cluster.client.lost_deletes").inc()
                return
            target_node, target_acg = located
        else:
            # Never indexed: any stamped-but-unsent change dies with it.
            self.freshness.forget(inode.ino)
            self._forget_file(inode.ino)
            return
        self.freshness.stamp(inode.ino, self.vfs.clock.now())
        # The index entry must go too, or searches would return a
        # path that no longer exists.  If the owning node is dead
        # even after retries the unlink itself must not fail — the
        # stale entry is recorded as debt instead.
        try:
            self._learn_ack(self.rpc.call(
                target_node, "index_update", target_acg,
                [IndexUpdate.delete(inode.ino)], local=self.local))
            self._forget_file(inode.ino)
            return
        except DEGRADABLE_ERRORS:
            pass
        except StaleRoute:
            # Mid-migration debris NACKed the delete: queue it for the
            # batched path, which refreshes routes and retries.
            self._queue_nacked_delete(inode.ino)
            return
        # The cached owner was unreachable — a failover may already have
        # re-homed the partition.  One route refresh, then retry the new
        # owner before recording the entry as debt.
        try:
            self._refresh_routes()
        except DEGRADABLE_ERRORS:
            pass
        new_node = self._route_nodes.get(target_acg)
        if new_node and new_node != target_node:
            try:
                self._learn_ack(self.rpc.call(
                    new_node, "index_update", target_acg,
                    [IndexUpdate.delete(inode.ino)], local=self.local))
                self._forget_file(inode.ino)
                return
            except StaleRoute:
                self._queue_nacked_delete(inode.ino)
                return
            except DEGRADABLE_ERRORS:
                pass
        self.lost_deletes.append(inode.ino)
        self.freshness.forget(inode.ino)
        self._forget_file(inode.ino)
        if self.registry is not None:
            self.registry.counter("cluster.client.lost_deletes").inc()

    def _queue_nacked_delete(self, file_id: int) -> None:
        self._note_nacks(1)
        self._pending.append((-1, IndexUpdate.delete(file_id)))
        self.updates_requeued += 1
        if self.registry is not None:
            self.registry.counter("cluster.client.requeued_updates").inc()

    def _on_rename(self, old_path: str, new_path: str, inode: Inode) -> None:
        """A rename keeps the inode but changes the path — and therefore
        the keyword index entries — so re-index under the new path if the
        file was indexed (or queued) before."""
        was_pending = any(u.file_id == inode.ino for _, u in self._pending)
        self._pending = [(h, u) for h, u in self._pending
                         if u.file_id != inode.ino]
        if was_pending or self._is_indexed(inode.ino):
            attrs: Dict[str, Any] = {name: getattr(inode, name)
                                     for name in _INODE_ATTRS}
            attrs.update(inode.attributes)
            self.freshness.stamp(inode.ino, self.vfs.clock.now())
            self._enqueue(-1, IndexUpdate.upsert(inode.ino, attrs,
                                                 path=new_path))

    def _is_indexed(self, file_id: int) -> bool:
        """Is this file indexed?  The route cache answers for files this
        client placed itself; only unknown files cost a Master lookup
        (read-only — unlike route_updates, it never creates a mapping)."""
        if file_id in self._file_routes or file_id in self._stale_files:
            return True
        return self._master_call("lookup_file", file_id,
                                 local=self.local) is not None

    def _update_for(self, path: str, pid: int = 0) -> Tuple[IndexUpdate, Optional[int]]:
        inode = self.vfs.stat(path)
        attrs: Dict[str, Any] = {name: getattr(inode, name) for name in _INODE_ATTRS}
        attrs.update(inode.attributes)
        hint = self.access_manager.last_file(pid, exclude=inode.ino)
        return IndexUpdate.upsert(inode.ino, attrs, path=path), hint

    def _enqueue(self, hint: int, update: IndexUpdate) -> None:
        """Queue one update, coalescing per file when batching is on.

        The newest update for a file wins and keeps the earlier entry's
        queue position (and its placement hint, unless the new arrival
        brings one) — a rewrite-then-rewrite burst costs one slot and
        one server-side apply, and an upsert queued behind a delete can
        never resurrect out of order.  The queue flushes when it
        reaches ``batch_size`` or its oldest entry has waited past
        ``batch_age_s``.  With batching off this is exactly the legacy
        append-and-flush-on-size path."""
        if not self.batching:
            self._pending.append((hint, update))
            if len(self._pending) >= self.batch_size:
                self.flush_updates()
            return
        now = self.vfs.clock.now()
        for i, (old_hint, old) in enumerate(self._pending):
            if old.file_id == update.file_id:
                self._pending[i] = (hint if hint != -1 else old_hint, update)
                break
        else:
            if not self._pending:
                self._pending_since = now
            self._pending.append((hint, update))
        if (len(self._pending) >= self.batch_size
                or (self._pending_since is not None
                    and now - self._pending_since >= self.batch_age_s)):
            self.flush_updates()

    def index_path(self, path: str, pid: int = 0) -> None:
        """Queue one file for (re)indexing; sent when the batch fills."""
        update, hint = self._update_for(path, pid=pid)
        self.freshness.stamp(update.file_id, self.vfs.clock.now())
        self._enqueue(hint if hint is not None else -1, update)

    def index_paths(self, paths: Sequence[str], pid: int = 0) -> None:
        """Queue several files for (re)indexing."""
        for path in paths:
            self.index_path(path, pid=pid)

    def index_dirty(self, pid: int = 0) -> int:
        """(Re)index every file the File Access Management module saw a
        close-after-write for since the last drain — already coalesced
        per inode, so a rewrite burst costs one queued update.  Returns
        the number of distinct dirty files queued."""
        from repro.errors import FileNotFound

        dirty = self.access_manager.drain_dirty()
        for _, path in dirty:
            try:
                self.index_path(path, pid=pid)
            except FileNotFound:
                # Unlinked after the drain snapshot: nothing to index.
                continue
        return len(dirty)

    def delete_path_index(self, file_id: int) -> None:
        """Queue removal of one file id from the indices."""
        self.freshness.stamp(file_id, self.vfs.clock.now())
        self._enqueue(-1, IndexUpdate.delete(file_id))

    def flush_updates(self) -> int:
        """Send the queued batch, routing through the client's cached
        route table (the routing-epoch protocol) wherever possible.

        Locally-routable updates go straight to their Index Node stamped
        with the cached epoch; a node that no longer owns the partition
        NACKs with :class:`~repro.errors.StaleRoute`, which triggers one
        route-table refresh and a retry (or a legacy Master-routed
        fallback when the refresh doesn't change the route).  Updates the
        cache cannot answer — stale routes, hinted files with unknown
        producers — take the legacy Master round-trip.  Per-target
        delivery failures re-queue that target's updates **with their
        placement hints intact** instead of failing the whole batch.
        Returns the number of updates actually delivered (acknowledged).
        """
        if not self._pending:
            return 0
        flush_t0 = self.vfs.clock.now()
        pending, self._pending = self._pending, []
        self._pending_since = None
        hint_of: Dict[int, int] = {}
        for h, u in pending:
            hint_of.setdefault(u.file_id, h)
        if self._route_epoch == 0:
            # First contact: one full-table pull so local placement sees
            # existing partitions and the clustering target.
            try:
                self._refresh_routes()
            except DEGRADABLE_ERRORS:
                pass
        alloc_state: Dict[str, bool] = {}
        stamped: Dict[Tuple[str, int], List[IndexUpdate]] = {}
        via_master: List[IndexUpdate] = []
        unrouted_deletes: List[IndexUpdate] = []
        for _, update in pending:
            acg_id = self._resolve_local(
                update, hint_of.get(update.file_id, -1), alloc_state)
            if acg_id is None:
                self._note_route(hit=False)
                if update.op is UpdateOp.DELETE:
                    # A delete the cache cannot route must never take the
                    # route_updates path: the Master would place the
                    # unknown file as *new* and the delete would no-op in
                    # an empty ACG while the real copy survived.
                    unrouted_deletes.append(update)
                else:
                    via_master.append(update)
            else:
                self._note_route(hit=True)
                stamped.setdefault(
                    (self._route_nodes[acg_id], acg_id), []).append(update)
        delivered = self._send_stamped(stamped, hint_of)
        for update in unrouted_deletes:
            delivered += self._send_unrouted_delete(update)
        delivered += self._send_via_master(via_master, hint_of)
        if delivered > 0 and self.registry is not None:
            # Batch acknowledgement latency — what the update_ack SLO
            # watches.  Only acknowledged flushes observe: an all-requeued
            # round has no ack to time.
            self.registry.histogram(
                "cluster.client.update_ack_latency_s").observe(
                    self.vfs.clock.now() - flush_t0)
        return delivered

    def _send_unrouted_delete(self, update: IndexUpdate) -> int:
        """Deliver a DELETE with no usable cached route: a read-only
        Master lookup first, then a cluster presence probe for
        client-placed files the Master never learned about."""
        target: Optional[Tuple[str, int]] = None
        try:
            acg_id = self._master_call("lookup_file",
                                       update.file_id, local=self.local)
        except DEGRADABLE_ERRORS:
            self._requeue([update], {})
            return 0
        if acg_id is not None and self._route_nodes.get(acg_id):
            target = (self._route_nodes[acg_id], acg_id)
        if target is None:
            target, complete = self._locate_file(update.file_id)
        if target is None:
            self.freshness.forget(update.file_id)
            self._forget_file(update.file_id)
            if not complete:
                # A node we could not reach may hold the copy: record the
                # debt rather than pretending the delete landed.
                self.lost_deletes.append(update.file_id)
                if self.registry is not None:
                    self.registry.counter("cluster.client.lost_deletes").inc()
            return 0
        node, acg_id = target
        try:
            ack = self.rpc.call(node, "index_update", acg_id, [update],
                                local=self.local,
                                request_bytes=update.wire_bytes())
        except (StaleRoute,) + DEGRADABLE_ERRORS:
            self._requeue([update], {})
            return 0
        self._learn_ack(ack)
        return self._sent([update])

    def _requeue(self, updates: Sequence[IndexUpdate],
                 hint_of: Dict[int, int]) -> None:
        # Hints ride along on the requeue: a later Master-routed retry
        # must still honor ACG co-location.
        self._pending.extend((hint_of.get(u.file_id, -1), u) for u in updates)
        self.updates_requeued += len(updates)
        if self.registry is not None:
            self.registry.counter(
                "cluster.client.requeued_updates").inc(len(updates))

    def _sent(self, updates: Sequence[IndexUpdate]) -> int:
        self.updates_sent += len(updates)
        for update in updates:
            if update.op is UpdateOp.DELETE:
                self._forget_file(update.file_id)
        return len(updates)

    def _wire_payload(self, acg_id: int, updates: Sequence[IndexUpdate]):
        """What one (node, ACG) group costs on the wire: a single
        :class:`UpdateBatch` envelope when batching (shared framing
        makes the group cheaper than the sum of its members), or the
        bare list with per-update accounting on the legacy path."""
        if self.batching and len(updates) > 1:
            batch = UpdateBatch(acg_id, tuple(updates))
            return batch, batch.wire_bytes()
        return updates, sum(u.wire_bytes() for u in updates)

    def _send_stamped(self, stamped: Dict[Tuple[str, int], List[IndexUpdate]],
                      hint_of: Dict[int, int]) -> int:
        """Deliver cache-routed groups with the epoch stamp; handle NACKs
        and unreachable targets with one shared route refresh."""
        delivered = 0
        nacked: List[Tuple[str, int, List[IndexUpdate]]] = []
        unreachable: List[Tuple[str, int, List[IndexUpdate]]] = []
        for (node, acg_id), updates in stamped.items():
            payload, nbytes = self._wire_payload(acg_id, updates)
            try:
                ack = self.rpc.call(node, "index_update", acg_id, payload,
                                    local=self.local,
                                    request_bytes=nbytes,
                                    epoch=self._route_epoch)
            except StaleRoute:
                self._note_nacks(len(updates))
                nacked.append((node, acg_id, updates))
            except DEGRADABLE_ERRORS:
                unreachable.append((node, acg_id, updates))
            else:
                self._learn_ack(ack)
                delivered += self._sent(updates)
        if not nacked and not unreachable:
            return delivered
        refreshed = True
        try:
            self._refresh_routes()
        except DEGRADABLE_ERRORS:
            refreshed = False
        fallback: List[IndexUpdate] = []
        for old_node, acg_id, updates in nacked:
            new_node = self._route_nodes.get(acg_id)
            if refreshed and new_node and new_node != old_node:
                # The route genuinely moved (migration or failover):
                # resend under the fresh epoch.
                payload, nbytes = self._wire_payload(acg_id, updates)
                try:
                    ack = self.rpc.call(new_node, "index_update", acg_id,
                                        payload, local=self.local,
                                        request_bytes=nbytes,
                                        epoch=self._route_epoch)
                except StaleRoute:
                    self._note_nacks(len(updates))
                    self._requeue(updates, hint_of)
                except DEGRADABLE_ERRORS:
                    self._requeue(updates, hint_of)
                else:
                    self._learn_ack(ack)
                    delivered += self._sent(updates)
            else:
                # Same route even after a refresh: the node most likely
                # missed its ownership grant.  Heal through the legacy
                # Master path (unstamped, create-on-demand).
                fallback.extend(updates)
        for old_node, acg_id, updates in unreachable:
            new_node = self._route_nodes.get(acg_id)
            if refreshed and new_node and new_node != old_node:
                payload, nbytes = self._wire_payload(acg_id, updates)
                try:
                    ack = self.rpc.call(new_node, "index_update", acg_id,
                                        payload, local=self.local,
                                        request_bytes=nbytes,
                                        epoch=self._route_epoch)
                except (StaleRoute,) + DEGRADABLE_ERRORS:
                    self._requeue(updates, hint_of)
                else:
                    self._learn_ack(ack)
                    delivered += self._sent(updates)
            else:
                # The node is down and routing hasn't moved yet; the
                # next flush retries (failover may re-home it by then).
                self._requeue(updates, hint_of)
        if fallback:
            delivered += self._send_via_master(fallback, hint_of)
        return delivered

    def _send_via_master(self, updates: Sequence[IndexUpdate],
                         hint_of: Dict[int, int]) -> int:
        """Legacy path: the Master routes the batch; sends go unstamped
        (create-on-demand on the Index Node heals ownership gaps)."""
        if not updates:
            return 0
        file_ids = [u.file_id for u in updates]
        hints = {u.file_id: hint_of[u.file_id] for u in updates
                 if hint_of.get(u.file_id, -1) != -1}
        try:
            routes: List[RouteEntry] = self._master_call(
                "route_updates", file_ids, hints,
                local=self.local, request_bytes=8 * len(file_ids))
        except DEGRADABLE_ERRORS:
            # The routing round-trip itself was lost: nothing went out.
            self._requeue(updates, hint_of)
            return 0
        route_by_file = {r.file_id: r for r in routes}
        by_target: Dict[Tuple[str, int], List[IndexUpdate]] = {}
        unrouted: List[IndexUpdate] = []
        for update in updates:
            route = route_by_file.get(update.file_id)
            if route is None or not route.node:
                # A partial or inconsistent route list must not drop the
                # rest of the batch on the floor — requeue what the
                # Master didn't answer for.
                unrouted.append(update)
                continue
            if update.op is not UpdateOp.DELETE:
                self._learn_route(update.file_id, route.acg_id, node=route.node)
            by_target.setdefault((route.node, route.acg_id), []).append(update)
        if unrouted:
            self._requeue(unrouted, hint_of)
        delivered = 0
        for (node, acg_id), target_updates in by_target.items():
            payload, nbytes = self._wire_payload(acg_id, target_updates)
            try:
                ack = self.rpc.call(node, "index_update", acg_id,
                                    payload, local=self.local,
                                    request_bytes=nbytes)
            except StaleRoute:
                self._note_nacks(len(target_updates))
                self._requeue(target_updates, hint_of)
                continue
            except DEGRADABLE_ERRORS:
                self._requeue(target_updates, hint_of)
                continue
            self._learn_ack(ack)
            delivered += self._sent(target_updates)
        return delivered

    # -- ACG flush ----------------------------------------------------------------------

    def process_finished(self, pid: int) -> None:
        """A traced process exited: drop its open history and flush the
        accumulated ACG to the Index Nodes (weakly consistent)."""
        self.access_manager.process_finished(pid)
        self.flush_acg()

    def flush_acg(self) -> int:
        """Push the client-side ACG to the Index Nodes that own each edge.

        Vertices with a cached route are grouped locally; only the
        remainder costs a Master routing round-trip (whose answers are
        learned into the cache for next time)."""
        acg = self.access_manager.drain()
        if acg.vertex_count == 0:
            return 0
        vertices = sorted(acg.vertices())
        # Producers place consumers: hint each edge target with its source.
        hints: Dict[int, int] = {}
        for u, v, _ in acg.edges():
            hints.setdefault(v, u)
        placement: Dict[int, Tuple[str, int]] = {}
        unknown: List[int] = []
        for file_id in vertices:
            acg_id = self._file_routes.get(file_id)
            node = self._route_nodes.get(acg_id) if acg_id is not None else None
            if acg_id is not None and node and file_id not in self._stale_files:
                self._note_route(hit=True)
                placement[file_id] = (node, acg_id)
            else:
                self._note_route(hit=False)
                unknown.append(file_id)
        if unknown:
            routes: List[RouteEntry] = self._master_call(
                "route_updates", unknown,
                {f: hints[f] for f in unknown if f in hints},
                local=self.local, request_bytes=8 * len(unknown))
            for route in routes:
                if not route.node:
                    continue
                self._learn_route(route.file_id, route.acg_id, node=route.node)
                placement[route.file_id] = (route.node, route.acg_id)
        grouped: Dict[Tuple[str, int], List[Tuple[int, int, int]]] = {}
        for u, v, w in acg.edges():
            if u in placement:
                grouped.setdefault(placement[u], []).append((u, v, w))
        for file_id in vertices:
            if file_id in placement:
                grouped.setdefault(placement[file_id], []).append((file_id, -1, 0))
        for (node, acg_id), records in grouped.items():
            self.rpc.call(node, "flush_acg", acg_id, records,
                          local=self.local, request_bytes=12 * len(records))
        return acg.edge_count

    # -- index DDL ---------------------------------------------------------------------------

    def create_index(self, name: str, kind: IndexKind, attrs: Sequence[str]) -> IndexSpec:
        """Create a user-defined index with a globally unique name."""
        spec = IndexSpec(name=name, kind=kind, attrs=tuple(attrs))
        self._master_call("create_index", spec, local=self.local)
        return spec

    # -- search API -----------------------------------------------------------------------------

    def search(self, query: str, index_name: Optional[str] = None,
               sort_by: Optional[str] = None, descending: bool = False,
               limit: Optional[int] = None,
               deadline_s: Optional[float] = None) -> List[str]:
        """Run an API-form query; returns matching file paths.

        Default order is lexicographic by path.  ``sort_by`` orders by an
        attribute instead (files missing it sort last), ``descending``
        flips the order, and ``limit`` truncates — the result-shaping
        analytics pipelines need ("the 10 biggest segments of the hour").

        ``deadline_s`` opts into partial results under replication: when
        a partition's primary cannot answer, a *lagging* follower's
        answer is accepted instead of failing the leg — but only if it
        arrived within ``deadline_s`` (virtual seconds, measured from
        the start of the search); a partial answer that misses the
        deadline is refused and the leg degrades as if no opt-in were
        given.  The deadline never truncates *sound* answers (a live
        primary or a caught-up follower) — it bounds how late stale data
        may be accepted, not how long the search may run.  Use
        :meth:`search_detailed` to see which partitions were stale.
        """
        results = self._search_raw(parse_query(query), index_name,
                                   query=query, deadline_s=deadline_s)
        if sort_by is None:
            paths = sorted({p for r in results for p in r.paths})
            return paths[:limit] if limit is not None else paths
        # Attribute ordering needs values: gather (path, key) pairs from
        # the per-node answers' id->attrs via a second aggregation pass.
        keyed: Dict[str, Any] = {}
        for result in results:
            for path in result.paths:
                keyed.setdefault(path, None)
        values = self._attribute_values(results, sort_by)
        ordered = sorted(
            keyed,
            key=lambda p: ((values.get(p) is None),
                           values.get(p) if values.get(p) is not None else 0,
                           p),
            reverse=descending,
        )
        return ordered[:limit] if limit is not None else ordered

    def search_detailed(self, query: str,
                        index_name: Optional[str] = None,
                        deadline_s: Optional[float] = None) -> SearchAnswer:
        """Like :meth:`search`, but the answer carries its availability
        verdict: whether the fan-out degraded, which partitions and nodes
        the result set is missing when it did, and — under the
        ``deadline_s`` opt-in — which partitions were answered from a
        lagging replica (``partial``/``lagging_partitions``)."""
        paths = self.search(query, index_name=index_name,
                            deadline_s=deadline_s)
        outcome = self.last_outcome
        return SearchAnswer(
            paths=paths,
            degraded=outcome.degraded,
            unreachable_partitions=outcome.unreachable_partitions,
            unreachable_nodes=sorted(outcome.unreachable),
            partial=bool(self._last_lagging),
            lagging_partitions=list(self._last_lagging),
        )

    def _attribute_values(self, results: Sequence[SearchResult],
                          attr: str) -> Dict[str, Any]:
        """Fetch the sort attribute for each result path via stat on the
        shared VFS (paths are live files; their inodes carry the value)."""
        values: Dict[str, Any] = {}
        for result in results:
            for path in result.paths:
                try:
                    inode = self.vfs.stat(path)
                except Exception:
                    continue
                if attr in ("size", "mtime", "ctime", "uid"):
                    values[path] = getattr(inode, attr)
                else:
                    values[path] = inode.attributes.get(attr)
        return values

    def search_directory(self, query_path: str) -> List[str]:
        """Run a dynamic query-directory, e.g. ``/data/?size>1m``.

        The scope prefix restricts results to paths under it.
        """
        scope, predicate = parse_query_directory(query_path)
        paths = self._search(predicate, None)
        if scope == "/":
            return paths
        prefix = scope.rstrip("/") + "/"
        return [p for p in paths if p.startswith(prefix) or p == scope]

    def select(self, query: str, attributes: Sequence[str],
               index_name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Search with a projection: returns one row per match with the
        requested attributes (plus ``path``), the shape analytics
        pipelines consume directly instead of re-statting every result.

        Missing attributes come back as None.  Rows are ordered by path.
        """
        results = self._search_raw(parse_query(query), index_name)
        rows: List[Dict[str, Any]] = []
        for path in sorted({p for r in results for p in r.paths}):
            try:
                inode = self.vfs.stat(path)
            except Exception:
                continue  # raced with an unlink
            row: Dict[str, Any] = {"path": path}
            for attr in attributes:
                if attr in ("size", "mtime", "ctime", "uid"):
                    row[attr] = getattr(inode, attr)
                else:
                    row[attr] = inode.attributes.get(attr)
            rows.append(row)
        return rows

    def explain(self, query: str,
                index_name: Optional[str] = None) -> Dict[int, List[str]]:
        """EXPLAIN a query: ACG id → the access paths its Index Node
        would use.  Nothing is executed or committed."""
        predicate = parse_query(query)
        routing: Dict[str, List[int]] = self._master_call(
            "route_search", index_name, local=self.local)
        names = [index_name] if index_name else None
        out: Dict[int, List[str]] = {}
        for node, acg_ids in sorted(routing.items()):
            for acg_id, descriptions in self.rpc.call(
                    node, "explain", acg_ids, predicate, names,
                    local=self.local):
                out[acg_id] = descriptions
        return out

    def search_ids(self, query: str, index_name: Optional[str] = None) -> Set[int]:
        """Like :meth:`search` but returns file ids."""
        results = self._search_raw(parse_query(query), index_name)
        ids: Set[int] = set()
        for result in results:
            ids |= result.file_ids
        return ids

    def _search(self, predicate: Predicate, index_name: Optional[str]) -> List[str]:
        results = self._search_raw(predicate, index_name)
        paths: Set[str] = set()
        for result in results:
            paths.update(result.paths)
        return sorted(paths)

    def _search_raw(self, predicate: Predicate,
                    index_name: Optional[str],
                    query: Optional[str] = None,
                    deadline_s: Optional[float] = None) -> List[SearchResult]:
        clock = self.vfs.clock
        start = clock.now()
        # The partial-answer opt-in is enforced as an *absolute* virtual
        # time: a lagging replica's answer is only accepted if it landed
        # by this instant.  None means "never accept stale data".
        deadline_t = (start + deadline_s) if deadline_s is not None else None
        # Per-search hedge bookkeeping, filled in by the leg closures:
        # which partitions a lagging replica ended up answering for.
        hedge_ctx: Dict[str, Set[int]] = {"lagging": set()}
        with self.tracer.span("search", query=query) as root:
            # Any pending updates of ours must be visible to our own search.
            with self.tracer.span("flush_updates"):
                self.flush_updates()
            self.searches_issued += 1
            if self._route_epoch == 0:
                try:
                    self._refresh_routes()
                except DEGRADABLE_ERRORS:
                    pass
            self._refresh_summaries()
            # Fan out along the cached route table — every placed
            # partition, since even a zero-size one may have absorbed
            # updates since the table was fetched.  Partitions whose
            # cached summary *proves* they cannot match are asked to be
            # skipped instead of searched: the skip request carries the
            # summary's watermark and the owning node only honours it
            # after re-validating (exact watermark, nothing pending), so
            # pruning can never lose a result — a Bloom false positive
            # or stale summary just costs a searched leg.
            now = clock.now()
            routing: Dict[str, List[int]] = {}
            pruned: Dict[str, Dict[int, Tuple[str, int, int]]] = {}
            for acg_id, node in self._route_nodes.items():
                if not node:
                    continue
                snap = (self._summaries.get(acg_id)
                        if self.prune_searches else None)
                if (snap is not None and not snap.dirty
                        and not summary_may_match(snap, predicate, now)):
                    pruned.setdefault(node, {})[acg_id] = snap.watermark
                else:
                    routing.setdefault(node, []).append(acg_id)
            prune_attempts = sum(len(v) for v in pruned.values())
            # Per-node leg accounting: a failed leg's *pruned* partitions
            # count as unserved too (their skip was never validated), so
            # the retry round re-covers them.
            legs: Dict[str, List[int]] = {n: list(a) for n, a in routing.items()}
            for node, skips in pruned.items():
                legs.setdefault(node, []).extend(sorted(skips))
            names = [index_name] if index_name else None
            if not legs:
                outcome = FanoutOutcome()
            else:
                # Index Nodes serve their share in parallel (Figure 6);
                # network fan-out overlaps too, which clock.parallel
                # models.  ``parallel=True`` tells the profiler these
                # children overlap: wall time is the slowest leg, not the
                # sum.  Legs that fail transiently after retries degrade
                # the answer instead of failing it (scatter_gather).
                with self.tracer.span("fanout", parallel=True,
                                      nodes=len(legs)) as span:
                    outcome = scatter_gather(
                        clock, legs,
                        lambda n: self._call_search_leg(
                            n, routing.get(n, []), pruned.get(n) or None,
                            predicate, names, hedge_ctx, deadline_t))
                    if outcome.degraded:
                        span.set_attribute(
                            "unreachable", sorted(outcome.unreachable))
            if (outcome.stale or outcome.unreachable
                    or outcome.max_node_epoch() > self._route_epoch):
                outcome = self._retry_search(clock, outcome, predicate, names,
                                             hedge_ctx, deadline_t)
            results = list(outcome.results)
        self.last_outcome = outcome
        self._last_lagging = sorted(hedge_ctx["lagging"])
        if self._last_lagging:
            self.journal.emit("search.partial",
                              lagging=list(self._last_lagging))
        if outcome.degraded:
            self.journal.emit(
                "search.degraded",
                unreachable_partitions=sorted(
                    outcome.unreachable_partitions),
                unreachable_nodes=sorted(outcome.unreachable))
        if self.registry is not None:
            self.registry.counter("cluster.client.searches").inc()
            if self._last_lagging:
                self.registry.counter("cluster.client.partial_searches").inc()
            if outcome.degraded:
                self.registry.counter("cluster.client.degraded_searches").inc()
                self.registry.counter(
                    "cluster.client.unreachable_partitions").inc(
                        len(outcome.unreachable_partitions))
            if prune_attempts:
                self.registry.counter("search.prune_attempts").inc(
                    prune_attempts)
            self.registry.counter("search.partitions_pruned").inc(
                len(outcome.pruned_ok))
            self.registry.counter("search.partitions_searched").inc(
                len(results))
            self.registry.histogram("cluster.client.search_latency_s").observe(
                clock.now() - start)
        return results

    def _call_search_leg(self, node: str, acg_ids: List[int],
                         pruned: Optional[Dict[int, Tuple[str, int, int]]],
                         predicate: Predicate, names: Optional[List[str]],
                         hedge_ctx: Dict[str, Set[int]],
                         deadline_t: Optional[float]):
        """One search leg, hedged to a follower replica when possible.

        Without a hedging policy (RF = 1) this is exactly the historical
        single call.  With one, the primary's call races a follower: the
        hedge launches only if the primary is still outstanding after
        the policy's p95-derived delay, and the first *sound* answer
        wins.  The follower searches the pruned partitions too (it
        cannot validate summary skips), so a follower answer is always
        oracle-equal to an unpruned primary answer."""
        policy = self.hedging
        leg_acgs = sorted(set(acg_ids) | set(pruned or ()))
        secondary = (self._hedge_secondary(node, leg_acgs)
                     if policy is not None and policy.enabled else None)
        clock = self.vfs.clock
        leg_start = clock.now()
        if secondary is None:
            reply = self.rpc.call(node, "search", acg_ids, predicate,
                                  names, local=self.local,
                                  epoch=self._route_epoch, pruned=pruned)
            if policy is not None:
                policy.observe(clock.now() - leg_start)
            return reply
        min_seqs = {a: self._repl_seq_seen[a] for a in leg_acgs
                    if self._repl_seq_seen.get(a)}
        out = self.rpc.hedged_call(
            node, secondary, "search", policy.delay_s(),
            acg_ids, predicate, names,
            secondary_method="search_replica",
            secondary_args=(leg_acgs, predicate, names, min_seqs),
            secondary_kwargs={"local": self.local},
            local=self.local, epoch=self._route_epoch, pruned=pruned)
        if not out.hedged and not out.primary.ok:
            # The primary failed *before* the hedge timer (a dead node
            # fails instantly without a retry policy), so the race never
            # launched the follower — rescue-call it directly: it is the
            # only path left to an answer for this leg.
            try:
                value = self.rpc.call(secondary, "search_replica",
                                      leg_acgs, predicate, names, min_seqs,
                                      local=self.local)
            except ClusterError:
                pass  # leg degrades on the primary's original error
            else:
                if self.registry is not None:
                    self.registry.counter("cluster.client.hedge_rescues").inc()
                out = HedgedOutcome(
                    primary=out.primary,
                    secondary=CallOutcome(ok=True, value=value),
                    primary_end=out.primary_end,
                    secondary_end=clock.now(), hedged=True)
        return self._resolve_hedge(clock, leg_start, out, policy,
                                   hedge_ctx, deadline_t)

    def _hedge_secondary(self, primary: str,
                         acg_ids: List[int]) -> Optional[str]:
        """The follower node to hedge a leg to: one that (per the cached
        route table) follows *every* partition in the leg — a partial
        cover would come back ``missing`` and be unusable anyway."""
        if not acg_ids:
            return None
        counts: Dict[str, int] = {}
        for acg_id in acg_ids:
            for replica in self._route_replicas.get(acg_id, ()):
                if replica != primary:
                    counts[replica] = counts.get(replica, 0) + 1
        full = sorted(n for n, c in counts.items() if c == len(acg_ids))
        return full[0] if full else None

    def _resolve_hedge(self, clock, leg_start: float, out, policy,
                       hedge_ctx: Dict[str, Set[int]],
                       deadline_t: Optional[float]):
        """Pick the leg's answer from a hedged race.

        Soundness order: the primary's answer is always sound; a
        follower's is sound when it covers every requested partition at
        or above this client's acked watermark.  The first sound
        finisher wins (the loser's remaining time is not waited for).  A
        *lagging* follower answer is a last resort, accepted only under
        the partial-results opt-in when the primary failed outright,
        and only if it arrived by ``deadline_t`` (the absolute
        virtual-time deadline derived from the search's ``deadline_s``)
        — stale data that also missed the deadline has no value left.
        Accepted lagging answers are recorded in ``hedge_ctx`` so the
        caller can mark the answer partial."""
        primary = out.primary
        if primary.ok:
            policy.observe(out.primary_end - leg_start)
        if not out.hedged:
            if primary.ok:
                return primary.value
            raise primary.error
        secondary = out.secondary
        reply = secondary.value if secondary.ok else None
        covers = reply is not None and not reply.missing
        sound = covers and not reply.lagging
        if primary.ok and (not sound
                           or out.primary_end <= out.secondary_end):
            clock.advance_to(out.primary_end)
            return primary.value
        if sound:
            clock.advance_to(out.secondary_end)
            return HedgedReply(node=reply.node, epoch=reply.epoch,
                               results=reply.results, from_replica=True)
        if (covers and deadline_t is not None
                and out.secondary_end <= deadline_t):
            clock.advance_to(out.secondary_end)
            hedge_ctx["lagging"].update(reply.lagging)
            return HedgedReply(node=reply.node, epoch=reply.epoch,
                               results=reply.results, from_replica=True,
                               lagging=tuple(reply.lagging))
        raise primary.error

    def _retry_search(self, clock, outcome: FanoutOutcome,
                      predicate: Predicate,
                      names: Optional[List[str]],
                      hedge_ctx: Dict[str, Set[int]],
                      deadline_t: Optional[float] = None) -> FanoutOutcome:
        """One retry round after a stale fan-out: refresh the route table
        and re-query only the partitions the first round didn't serve.

        Validated skips (``pruned_ok``) count as served; the retry round
        itself never prunes — after a stale first round the summaries
        are suspect, so it fails open and searches everything left.  The
        retry legs go through the same hedged path as the first round:
        the refreshed route table carries the current replica sets, so a
        leg whose primary is down can still be rescued by a follower."""
        self._note_nacks(sum(len(v) for v in outcome.stale.values()))
        try:
            self._refresh_routes()
        except DEGRADABLE_ERRORS:
            return outcome
        served = {r.acg_id for r in outcome.results} | outcome.pruned_ok
        routing: Dict[str, List[int]] = {}
        for acg_id, node in self._route_nodes.items():
            if node and acg_id not in served:
                routing.setdefault(node, []).append(acg_id)
        if not routing:
            # Everything still placed was already answered; the failed
            # legs covered partitions the fresh table no longer lists.
            return FanoutOutcome(results=list(outcome.results),
                                 node_epochs=dict(outcome.node_epochs),
                                 pruned_ok=set(outcome.pruned_ok))
        with self.tracer.span("fanout_retry", parallel=True,
                              nodes=len(routing)):
            retry = scatter_gather(
                clock, routing,
                lambda n: self._call_search_leg(
                    n, routing[n], None, predicate, names,
                    hedge_ctx, deadline_t))
        return FanoutOutcome(
            results=list(outcome.results) + list(retry.results),
            unreachable=retry.unreachable,
            errors=retry.errors,
            stale=retry.stale,
            node_epochs={**outcome.node_epochs, **retry.node_epochs},
            pruned_ok=outcome.pruned_ok | retry.pruned_ok)

    def profile_search(self, query: str,
                       index_name: Optional[str] = None):
        """Run one search under tracing and return its
        :class:`~repro.obs.profile.QueryProfile` (EXPLAIN ANALYZE).

        Requires tracing to be enabled on the deployment
        (``service.enable_tracing()``); the no-op tracer keeps no spans
        to profile.
        """
        from repro.obs.profile import QueryProfile

        if not self.tracer.enabled:
            raise ClusterError(
                "tracing is disabled: call service.enable_tracing() before "
                "profiling a query")
        self.search(query, index_name=index_name)
        root = self.tracer.last_root("search")
        assert root is not None  # the search above just recorded one
        return QueryProfile(root, query=query)
