"""Propeller client.

Lives on each client machine (Figure 5): the File Access Management module
(an observer of the shared VFS) builds the per-client ACG in RAM; the File
Query Engine turns query strings — API form or query-directory form — into
predicate ASTs and fans search requests out to the Index Nodes the Master
names, in parallel; file-indexing requests go out in batches (the paper's
evaluation uses a batch size of 128) after a routing round-trip to the
Master.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cluster.messages import IndexUpdate, RouteEntry, SearchResult
from repro.errors import ClusterError
from repro.fs.interceptor import FileAccessManager
from repro.obs.freshness import NULL_FRESHNESS
from repro.obs.tracing import NULL_TRACER
from repro.fs.namespace import Inode
from repro.fs.vfs import VirtualFileSystem
from repro.indexstructures.base import IndexKind
from repro.query.ast import Predicate
from repro.query.executor import DEGRADABLE_ERRORS, FanoutOutcome, scatter_gather
from repro.query.parser import parse_query, parse_query_directory
from repro.query.planner import IndexSpec
from repro.sim.rpc import RpcNetwork

DEFAULT_BATCH_SIZE = 128

_INODE_ATTRS = ("size", "mtime", "ctime", "uid")


@dataclass
class SearchAnswer:
    """A search's paths plus its availability verdict.

    ``degraded`` is True when at least one Index Node could not serve its
    share after retries; ``unreachable_partitions`` then names exactly
    which ACGs the answer is missing, and ``unreachable_nodes`` which
    nodes failed.  A non-degraded answer is complete.
    """

    paths: List[str] = field(default_factory=list)
    degraded: bool = False
    unreachable_partitions: List[int] = field(default_factory=list)
    unreachable_nodes: List[str] = field(default_factory=list)


class PropellerClient:
    """One client's view of the Propeller service."""

    def __init__(self, vfs: VirtualFileSystem, rpc: RpcNetwork,
                 master: str = "master", batch_size: int = DEFAULT_BATCH_SIZE,
                 pid_filter: Optional[Set[int]] = None,
                 local: bool = False,
                 pump: Optional[Callable[[], None]] = None) -> None:
        self.vfs = vfs
        self.rpc = rpc
        self.master = master
        self.batch_size = batch_size
        self.local = local
        # Background timers (cache commits, heartbeats, checkpoints) fire
        # when virtual time advances (service.advance / pump) — never
        # inside a request, because background I/O runs concurrently with
        # foreground requests on real deployments and must not inflate a
        # measured request's latency on the single simulation clock.
        self._pump = pump if pump is not None else (lambda: None)
        self.access_manager = FileAccessManager(
            on_create=self._on_create,
            on_unlink=self._on_unlink,
            on_rename=self._on_rename,
            pid_filter=pid_filter,
        )
        vfs.add_observer(self.access_manager)
        self._pending: List[Tuple[int, IndexUpdate]] = []  # (hint, update)
        self.searches_issued = 0
        self.updates_sent = 0
        self.updates_requeued = 0
        # Deletes whose Index Node was unreachable even after retries:
        # the index entry may outlive the file until an operator (or the
        # chaos checker) reconciles.  Kept so callers can see the debt.
        self.lost_deletes: List[int] = []
        # The availability verdict of the most recent search fan-out.
        self.last_outcome: FanoutOutcome = FanoutOutcome()
        # Observability (wired by the service): spans for the search
        # path, a registry for request-latency histograms.  Both charge
        # zero simulated time.
        self.tracer = NULL_TRACER
        self.registry = None
        self.freshness = NULL_FRESHNESS
        # Namespace integration: listing "/scope/?query" on the VFS runs
        # the search through this client's File Query Engine.
        vfs.set_query_handler(self.search_directory)

    def set_freshness(self, tracker) -> None:
        """Thread one freshness tracker through this client and its File
        Access Management module (so close-after-write events stamp)."""
        self.freshness = tracker
        self.access_manager.freshness = tracker

    # -- namespace-change callbacks (from File Access Management) ----------------

    def _on_create(self, path: str, inode: Inode) -> None:
        # Creation alone does not index a file — applications choose when
        # to index (Section IV's workflow) — but deletion must clean up,
        # which is why only _on_unlink talks to the Master here.
        return None

    def _on_unlink(self, path: str, inode: Inode) -> None:
        # Cancel any still-batched updates for this file: flushing an
        # upsert *after* the delete would resurrect a dead file.
        self._pending = [(h, u) for h, u in self._pending
                         if u.file_id != inode.ino]
        try:
            route: Optional[RouteEntry] = self.rpc.call(
                self.master, "file_deleted", inode.ino, local=self.local)
        except DEGRADABLE_ERRORS:
            # The Master itself was unreachable: the mapping (and maybe an
            # index entry) survives the file.  Record the debt — the
            # unlink must not fail because bookkeeping did.
            self.lost_deletes.append(inode.ino)
            self.freshness.forget(inode.ino)
            if self.registry is not None:
                self.registry.counter("cluster.client.lost_deletes").inc()
            return
        if route is None or not route.node:
            # Never indexed: any stamped-but-unsent change dies with it.
            self.freshness.forget(inode.ino)
        if route is not None and route.node:
            self.freshness.stamp(inode.ino, self.vfs.clock.now())
            # The index entry must go too, or searches would return a
            # path that no longer exists.  If the owning node is dead
            # even after retries the unlink itself must not fail — the
            # stale entry is recorded as debt instead.
            try:
                self.rpc.call(route.node, "index_update", route.acg_id,
                              [IndexUpdate.delete(inode.ino)], local=self.local)
            except DEGRADABLE_ERRORS:
                self.lost_deletes.append(inode.ino)
                self.freshness.forget(inode.ino)
                if self.registry is not None:
                    self.registry.counter("cluster.client.lost_deletes").inc()

    def _on_rename(self, old_path: str, new_path: str, inode: Inode) -> None:
        """A rename keeps the inode but changes the path — and therefore
        the keyword index entries — so re-index under the new path if the
        file was indexed (or queued) before."""
        was_pending = any(u.file_id == inode.ino for _, u in self._pending)
        self._pending = [(h, u) for h, u in self._pending
                         if u.file_id != inode.ino]
        if was_pending or self._is_indexed(inode.ino):
            attrs: Dict[str, Any] = {name: getattr(inode, name)
                                     for name in _INODE_ATTRS}
            attrs.update(inode.attributes)
            self.freshness.stamp(inode.ino, self.vfs.clock.now())
            self._pending.append((-1, IndexUpdate.upsert(inode.ino, attrs,
                                                         path=new_path)))
            if len(self._pending) >= self.batch_size:
                self.flush_updates()

    def _is_indexed(self, file_id: int) -> bool:
        """Does the Master's file→ACG map know this file?  (Read-only —
        unlike route_updates, this never creates a mapping.)"""
        return self.rpc.call(self.master, "lookup_file", file_id,
                             local=self.local) is not None

    def _update_for(self, path: str, pid: int = 0) -> Tuple[IndexUpdate, Optional[int]]:
        inode = self.vfs.stat(path)
        attrs: Dict[str, Any] = {name: getattr(inode, name) for name in _INODE_ATTRS}
        attrs.update(inode.attributes)
        hint = self.access_manager.last_file(pid, exclude=inode.ino)
        return IndexUpdate.upsert(inode.ino, attrs, path=path), hint

    def index_path(self, path: str, pid: int = 0) -> None:
        """Queue one file for (re)indexing; sent when the batch fills."""
        update, hint = self._update_for(path, pid=pid)
        self.freshness.stamp(update.file_id, self.vfs.clock.now())
        self._pending.append((hint if hint is not None else -1, update))
        if len(self._pending) >= self.batch_size:
            self.flush_updates()

    def index_paths(self, paths: Sequence[str], pid: int = 0) -> None:
        """Queue several files for (re)indexing."""
        for path in paths:
            self.index_path(path, pid=pid)

    def delete_path_index(self, file_id: int) -> None:
        """Queue removal of one file id from the indices."""
        self.freshness.stamp(file_id, self.vfs.clock.now())
        self._pending.append((-1, IndexUpdate.delete(file_id)))
        if len(self._pending) >= self.batch_size:
            self.flush_updates()

    def flush_updates(self) -> int:
        """Route the queued batch through the Master, then send each
        Index Node its share (the paper's batched indexing path).

        Per-target delivery failures (a dead or unreachable Index Node,
        even after the RPC layer's retries) re-queue that target's
        updates instead of failing the whole batch — the next flush
        re-routes them through the Master, which by then may have failed
        the partition over to a live node.  Returns the number of updates
        actually delivered (and acknowledged) this flush.
        """
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        file_ids = [u.file_id for _, u in pending]
        hints = {u.file_id: h for h, u in pending if h != -1}
        try:
            routes: List[RouteEntry] = self.rpc.call(
                self.master, "route_updates", file_ids, hints,
                local=self.local, request_bytes=8 * len(file_ids))
        except DEGRADABLE_ERRORS:
            # The routing round-trip itself was lost: nothing went out.
            # Put the whole batch back (hints intact) for the next flush.
            self._pending = pending + self._pending
            self.updates_requeued += len(pending)
            if self.registry is not None:
                self.registry.counter(
                    "cluster.client.requeued_updates").inc(len(pending))
            return 0
        route_by_file = {r.file_id: r for r in routes}
        by_target: Dict[Tuple[str, int], List[IndexUpdate]] = {}
        for _, update in pending:
            route = route_by_file[update.file_id]
            by_target.setdefault((route.node, route.acg_id), []).append(update)
        delivered = 0
        for (node, acg_id), updates in by_target.items():
            try:
                self.rpc.call(node, "index_update", acg_id, updates,
                              local=self.local,
                              request_bytes=sum(u.wire_bytes() for u in updates))
            except DEGRADABLE_ERRORS:
                self._pending.extend((-1, u) for u in updates)
                self.updates_requeued += len(updates)
                if self.registry is not None:
                    self.registry.counter(
                        "cluster.client.requeued_updates").inc(len(updates))
                continue
            self.updates_sent += len(updates)
            delivered += len(updates)
        return delivered

    # -- ACG flush ----------------------------------------------------------------------

    def process_finished(self, pid: int) -> None:
        """A traced process exited: drop its open history and flush the
        accumulated ACG to the Index Nodes (weakly consistent)."""
        self.access_manager.process_finished(pid)
        self.flush_acg()

    def flush_acg(self) -> int:
        """Push the client-side ACG to the Index Nodes that own each edge."""
        acg = self.access_manager.drain()
        if acg.vertex_count == 0:
            return 0
        vertices = sorted(acg.vertices())
        # Producers place consumers: hint each edge target with its source.
        hints: Dict[int, int] = {}
        for u, v, _ in acg.edges():
            hints.setdefault(v, u)
        routes: List[RouteEntry] = self.rpc.call(
            self.master, "route_updates", vertices, hints,
            local=self.local, request_bytes=8 * len(vertices))
        route_by_file = {r.file_id: r for r in routes}
        grouped: Dict[Tuple[str, int], List[Tuple[int, int, int]]] = {}
        for u, v, w in acg.edges():
            route = route_by_file[u]
            grouped.setdefault((route.node, route.acg_id), []).append((u, v, w))
        for file_id in vertices:
            route = route_by_file[file_id]
            grouped.setdefault((route.node, route.acg_id), []).append((file_id, -1, 0))
        for (node, acg_id), records in grouped.items():
            self.rpc.call(node, "flush_acg", acg_id, records,
                          local=self.local, request_bytes=12 * len(records))
        return acg.edge_count

    # -- index DDL ---------------------------------------------------------------------------

    def create_index(self, name: str, kind: IndexKind, attrs: Sequence[str]) -> IndexSpec:
        """Create a user-defined index with a globally unique name."""
        spec = IndexSpec(name=name, kind=kind, attrs=tuple(attrs))
        self.rpc.call(self.master, "create_index", spec, local=self.local)
        return spec

    # -- search API -----------------------------------------------------------------------------

    def search(self, query: str, index_name: Optional[str] = None,
               sort_by: Optional[str] = None, descending: bool = False,
               limit: Optional[int] = None) -> List[str]:
        """Run an API-form query; returns matching file paths.

        Default order is lexicographic by path.  ``sort_by`` orders by an
        attribute instead (files missing it sort last), ``descending``
        flips the order, and ``limit`` truncates — the result-shaping
        analytics pipelines need ("the 10 biggest segments of the hour").
        """
        results = self._search_raw(parse_query(query), index_name, query=query)
        if sort_by is None:
            paths = sorted({p for r in results for p in r.paths})
            return paths[:limit] if limit is not None else paths
        # Attribute ordering needs values: gather (path, key) pairs from
        # the per-node answers' id->attrs via a second aggregation pass.
        keyed: Dict[str, Any] = {}
        for result in results:
            for path in result.paths:
                keyed.setdefault(path, None)
        values = self._attribute_values(results, sort_by)
        ordered = sorted(
            keyed,
            key=lambda p: ((values.get(p) is None),
                           values.get(p) if values.get(p) is not None else 0,
                           p),
            reverse=descending,
        )
        return ordered[:limit] if limit is not None else ordered

    def search_detailed(self, query: str,
                        index_name: Optional[str] = None) -> SearchAnswer:
        """Like :meth:`search`, but the answer carries its availability
        verdict: whether the fan-out degraded, and which partitions and
        nodes the result set is missing when it did."""
        paths = self.search(query, index_name=index_name)
        outcome = self.last_outcome
        return SearchAnswer(
            paths=paths,
            degraded=outcome.degraded,
            unreachable_partitions=outcome.unreachable_partitions,
            unreachable_nodes=sorted(outcome.unreachable),
        )

    def _attribute_values(self, results: Sequence[SearchResult],
                          attr: str) -> Dict[str, Any]:
        """Fetch the sort attribute for each result path via stat on the
        shared VFS (paths are live files; their inodes carry the value)."""
        values: Dict[str, Any] = {}
        for result in results:
            for path in result.paths:
                try:
                    inode = self.vfs.stat(path)
                except Exception:
                    continue
                if attr in ("size", "mtime", "ctime", "uid"):
                    values[path] = getattr(inode, attr)
                else:
                    values[path] = inode.attributes.get(attr)
        return values

    def search_directory(self, query_path: str) -> List[str]:
        """Run a dynamic query-directory, e.g. ``/data/?size>1m``.

        The scope prefix restricts results to paths under it.
        """
        scope, predicate = parse_query_directory(query_path)
        paths = self._search(predicate, None)
        if scope == "/":
            return paths
        prefix = scope.rstrip("/") + "/"
        return [p for p in paths if p.startswith(prefix) or p == scope]

    def select(self, query: str, attributes: Sequence[str],
               index_name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Search with a projection: returns one row per match with the
        requested attributes (plus ``path``), the shape analytics
        pipelines consume directly instead of re-statting every result.

        Missing attributes come back as None.  Rows are ordered by path.
        """
        results = self._search_raw(parse_query(query), index_name)
        rows: List[Dict[str, Any]] = []
        for path in sorted({p for r in results for p in r.paths}):
            try:
                inode = self.vfs.stat(path)
            except Exception:
                continue  # raced with an unlink
            row: Dict[str, Any] = {"path": path}
            for attr in attributes:
                if attr in ("size", "mtime", "ctime", "uid"):
                    row[attr] = getattr(inode, attr)
                else:
                    row[attr] = inode.attributes.get(attr)
            rows.append(row)
        return rows

    def explain(self, query: str,
                index_name: Optional[str] = None) -> Dict[int, List[str]]:
        """EXPLAIN a query: ACG id → the access paths its Index Node
        would use.  Nothing is executed or committed."""
        predicate = parse_query(query)
        routing: Dict[str, List[int]] = self.rpc.call(
            self.master, "route_search", index_name, local=self.local)
        names = [index_name] if index_name else None
        out: Dict[int, List[str]] = {}
        for node, acg_ids in sorted(routing.items()):
            for acg_id, descriptions in self.rpc.call(
                    node, "explain", acg_ids, predicate, names,
                    local=self.local):
                out[acg_id] = descriptions
        return out

    def search_ids(self, query: str, index_name: Optional[str] = None) -> Set[int]:
        """Like :meth:`search` but returns file ids."""
        results = self._search_raw(parse_query(query), index_name)
        ids: Set[int] = set()
        for result in results:
            ids |= result.file_ids
        return ids

    def _search(self, predicate: Predicate, index_name: Optional[str]) -> List[str]:
        results = self._search_raw(predicate, index_name)
        paths: Set[str] = set()
        for result in results:
            paths.update(result.paths)
        return sorted(paths)

    def _search_raw(self, predicate: Predicate,
                    index_name: Optional[str],
                    query: Optional[str] = None) -> List[SearchResult]:
        clock = self.vfs.clock
        start = clock.now()
        with self.tracer.span("search", query=query) as root:
            # Any pending updates of ours must be visible to our own search.
            with self.tracer.span("flush_updates"):
                self.flush_updates()
            self.searches_issued += 1
            routing: Dict[str, List[int]] = self.rpc.call(
                self.master, "route_search", index_name, local=self.local)
            if not routing:
                outcome = FanoutOutcome()
            else:
                names = [index_name] if index_name else None
                # Index Nodes serve their share in parallel (Figure 6);
                # network fan-out overlaps too, which clock.parallel
                # models.  ``parallel=True`` tells the profiler these
                # children overlap: wall time is the slowest leg, not the
                # sum.  Legs that fail transiently after retries degrade
                # the answer instead of failing it (scatter_gather).
                with self.tracer.span("fanout", parallel=True,
                                      nodes=len(routing)) as span:
                    outcome = scatter_gather(
                        clock, routing,
                        lambda n: self.rpc.call(
                            n, "search", routing[n], predicate, names,
                            local=self.local))
                    if outcome.degraded:
                        span.set_attribute(
                            "unreachable", sorted(outcome.unreachable))
            results = list(outcome.results)
        self.last_outcome = outcome
        if self.registry is not None:
            self.registry.counter("cluster.client.searches").inc()
            if outcome.degraded:
                self.registry.counter("cluster.client.degraded_searches").inc()
                self.registry.counter(
                    "cluster.client.unreachable_partitions").inc(
                        len(outcome.unreachable_partitions))
            self.registry.histogram("cluster.client.search_latency_s").observe(
                clock.now() - start)
        return results

    def profile_search(self, query: str,
                       index_name: Optional[str] = None):
        """Run one search under tracing and return its
        :class:`~repro.obs.profile.QueryProfile` (EXPLAIN ANALYZE).

        Requires tracing to be enabled on the deployment
        (``service.enable_tracing()``); the no-op tracer keeps no spans
        to profile.
        """
        from repro.obs.profile import QueryProfile

        if not self.tracer.enabled:
            raise ClusterError(
                "tracing is disabled: call service.enable_tracing() before "
                "profiling a query")
        self.search(query, index_name=index_name)
        root = self.tracer.last_root("search")
        assert root is not None  # the search above just recorded one
        return QueryProfile(root, query=query)
