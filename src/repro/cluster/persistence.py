"""Shared-storage persistence of Index Node state.

Section IV: "All the indices, as well as the ACGs and their metadata, are
stored as regular files in the underlying shared file system."  This
module serializes one ACG replica — attribute store, path map, the ACG
itself, and the index specs (index *contents* are rebuilt from the store,
which is smaller and always consistent) — to a single file under
``/.propeller/`` on the shared VFS, and restores it on any node.

Two consumers:

* periodic checkpoints (crash recovery beyond the WAL window);
* failover — when the Master declares an Index Node dead, a surviving
  node adopts its ACGs straight from shared storage.
"""

from __future__ import annotations

import struct
import zlib
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import ClusterError
from repro.indexstructures.base import IndexKind
from repro.indexstructures.serialization import dump_value, load_value
from repro.fs.vfs import VirtualFileSystem
from repro.query.planner import IndexSpec

if TYPE_CHECKING:
    from repro.cluster.index_node import AcgReplica, IndexNode

PROPELLER_ROOT = "/.propeller"
_MAGIC = b"PACG"
_VERSION = 1


def replica_path(node_name: str, acg_id: int) -> str:
    """Canonical shared-storage location of one ACG's checkpoint."""
    return f"{PROPELLER_ROOT}/{node_name}/acg{acg_id:08d}.ckpt"


def dump_replica(replica: "AcgReplica") -> bytes:
    """Serialize one replica to its shared-storage checkpoint format."""
    chunks: List[bytes] = []
    # Index specs (so the restoring node can rebuild index structures).
    specs = [(s.name, s.kind.value, tuple(s.attrs))
             for s in replica.specs.values()]
    chunks.append(dump_value(tuple(specs)))
    # Attribute store: (file_id, attrs-as-pairs, path).
    files = []
    for file_id in replica.store.file_ids():
        attrs = replica.store.attrs(file_id)
        path = attrs.get("path")
        pairs = tuple(sorted((k, v) for k, v in attrs.items() if k != "path"))
        files.append((file_id, pairs, path))
    chunks.append(dump_value(tuple(files)))
    # The ACG edge/vertex records.
    chunks.append(dump_value(tuple(replica.graph.to_records())))
    body = b"".join(struct.pack("<I", len(c)) + c for c in chunks)
    header = _MAGIC + struct.pack("<IIQ", _VERSION, replica.acg_id,
                                  len(body)) + struct.pack("<I", zlib.crc32(body))
    return header + body


def load_replica_payload(data: bytes) -> Dict[str, Any]:
    """Parse a checkpoint; returns {acg_id, specs, files, acg_records}.

    Raises :class:`ClusterError` on a corrupt or mismatched file.
    """
    if data[:4] != _MAGIC:
        raise ClusterError("not a Propeller checkpoint (bad magic)")
    version, acg_id, body_len = struct.unpack_from("<IIQ", data, 4)
    (crc,) = struct.unpack_from("<I", data, 20)
    body = data[24:24 + body_len]
    if version != _VERSION:
        raise ClusterError(f"unsupported checkpoint version {version}")
    if len(body) != body_len or zlib.crc32(body) != crc:
        raise ClusterError("checkpoint failed CRC validation")
    offset = 0
    sections: List[Any] = []
    for _ in range(3):
        (n,) = struct.unpack_from("<I", body, offset)
        offset += 4
        value, consumed = load_value(body, offset)
        if consumed - offset != n:
            raise ClusterError("checkpoint section length mismatch")
        offset = consumed
        sections.append(value)
    specs_raw, files_raw, acg_records = sections
    specs = [IndexSpec(name, IndexKind(kind), tuple(attrs))
             for name, kind, attrs in specs_raw]
    files = [(file_id, dict(pairs), path) for file_id, pairs, path in files_raw]
    return {"acg_id": acg_id, "specs": specs, "files": files,
            "acg_records": list(acg_records)}


def checkpoint_replica(vfs: VirtualFileSystem, node_name: str,
                       replica: "AcgReplica") -> str:
    """Write one replica's checkpoint to the shared VFS; returns path."""
    path = replica_path(node_name, replica.acg_id)
    vfs.mkdir(f"{PROPELLER_ROOT}/{node_name}", parents=True)
    vfs.write_bytes(path, dump_replica(replica))
    return path


def read_checkpoint(vfs: VirtualFileSystem, path: str) -> Dict[str, Any]:
    """Load and validate a checkpoint file from the shared VFS.

    Accepts both frames: the legacy ``PACG`` checkpoint and a frozen
    ``PSEG`` segment (a frozen partition checkpoints as its segment
    bytes — same payload, tiered transfer format)."""
    data = vfs.read_bytes(path)
    from repro.cluster import segments

    if segments.is_segment(data):
        return segments.load_segment_payload(data)
    return load_replica_payload(data)


def remove_checkpoint(vfs: VirtualFileSystem, node_name: str, acg_id: int) -> bool:
    """Delete one ACG's checkpoint (after a completed migration the old
    owner's copy is stale and must not be adopted in a later failover).
    Returns whether a file was actually removed."""
    path = replica_path(node_name, acg_id)
    if not vfs.exists(path):
        return False
    vfs.unlink(path)
    return True


def list_checkpoints(vfs: VirtualFileSystem, node_name: str) -> List[str]:
    """All checkpoint paths a node has written (empty if none)."""
    base = f"{PROPELLER_ROOT}/{node_name}"
    if not vfs.exists(base):
        return []
    return [f"{base}/{name}" for name in vfs.readdir(base)
            if name.endswith(".ckpt")]
