"""Index Node.

Hosts the partitioned file indices: for every ACG assigned to it, an
:class:`AcgReplica` bundles the ACG itself, the attribute store (ground
truth for residual filtering) and one instance of each user-defined index.
Updates take the WAL → cache → commit path; searches force a commit of the
queried ACGs first, so results are always consistent with acknowledged
updates.  Background duties: committing timed-out cache buckets,
heart-beating the Master Node, and computing/executing ACG splits on
instruction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cluster.cache import DEFAULT_TIMEOUT_S, IndexCache
from repro.cluster.messages import (Heartbeat, IndexUpdate, ReplicaSearchReply,
                                    SearchReply, SearchResult, UpdateAck,
                                    UpdateOp)
from repro.cluster.segments import (FrozenPartition, SegmentCache, TierPolicy,
                                    dump_segment, load_segment,
                                    load_segment_payload, segment_key)
from repro.cluster.wal import WriteAheadLog
from repro.core.acg import AccessCausalityGraph
from repro.core.partitioner import PartitioningPolicy, split_partition
from repro.errors import (ClusterError, ObjectStoreError, SegmentCorruption,
                          StaleMasterTerm, StaleReplEpoch, StaleRoute,
                          UnknownAcg)
from repro.indexstructures.base import Index, IndexKind, make_index
from repro.obs.freshness import NULL_FRESHNESS
from repro.obs.journal import NULL_JOURNAL
from repro.obs.tracing import NULL_TRACER
from repro.query.ast import Predicate
from repro.query.canonical import canonicalize, is_time_dependent
from repro.query.executor import (DEGRADABLE_ERRORS, AttributeStore, execute,
                                  execute_plans, tokenize_path)
from repro.replication.log import ReplicationLog
from repro.query.summary import (PartitionSummary, SummarySnapshot,
                                 summary_may_match)
from repro.query.planner import (
    KEYWORD_ATTR,
    IndexSpec,
    Plan,
    plan_query,
    plan_query_set,
)
from repro.sim.machine import Machine
from repro.sim.rpc import RpcEndpoint

# CPU cost constants (order-of-magnitude figures for 2014-era Xeons).
_CACHE_ADD_OPS = 2_000          # hash insert into the in-memory cache
_COMMIT_UPDATE_OPS = 8_000      # apply one update to one index
_EXAMINE_OPS = 500              # residual-filter one candidate
_REBUILD_OPS_PER_FILE = 100     # re-observe one file during summary rebuild
# Group-commit amortization.  A batch envelope pays the full per-update
# price once (parse, route, cache-bucket lookup) and a marginal price
# for each further update that rides the same envelope / sorted run:
_CACHE_ADD_BATCHED_OPS = 500    # marginal cache insert within an envelope
_COMMIT_BATCH_BASE_OPS = 4_000  # per-batch setup of one bulk apply
_COMMIT_BATCHED_UPDATE_OPS = 2_000  # marginal bulk-apply cost per update
# Bitmap posting lists materialize results word-at-a-time instead of
# doc-at-a-time; one examine charge covers this many matches.
_VECTOR_WIDTH = 8
# Tiered storage: CPU to serialize one file into a frozen segment and
# to parse it back out during hydration (zlib + framing per file).
_FREEZE_OPS_PER_FILE = 200
_HYDRATE_OPS_PER_FILE = 150

# Per-node result cache entries (each is one ACG's answer to one
# canonical predicate at one commit watermark).
_RESULT_CACHE_CAP = 256

# RPCs only a Master originates.  Each is registered behind a term
# fence: the caller stamps its master term and a stamp older than the
# newest this node has seen is rejected with StaleMasterTerm — a
# deposed-but-alive Master must not mutate cluster state (the control
# plane's analogue of the replication epoch fence).  Unstamped calls
# (term 0, e.g. from tests driving a node directly) bypass the fence.
_MASTER_RPCS = frozenset({
    "create_index", "compute_split", "extract_partition",
    "install_partition", "drop_partition", "heartbeat", "adopt_acg",
    "own_partition", "transfer_out", "finish_migration",
    "cancel_transfer", "checkpoint_acg", "set_followers",
    "replica_watermark", "promote_replica", "drop_follower",
    "reset_follower_ack",
})


class AcgReplica:
    """Everything one Index Node keeps for one ACG."""

    def __init__(self, acg_id: int, machine: Machine,
                 incarnation: int = 0) -> None:
        self.acg_id = acg_id
        self.machine = machine
        self.graph = AccessCausalityGraph()
        self.store = AttributeStore()
        self.indexes: Dict[str, Index] = {}
        self.specs: Dict[str, IndexSpec] = {}
        # Commit-watermark pieces: ``incarnation`` is a per-node counter
        # stamped at replica creation (a dropped-then-recreated replica
        # can reach the same applied count with different content, so
        # the count alone is not a safe version), ``applied`` bumps once
        # per committed update.  Together with the node name they form
        # the watermark that versions summaries and the result cache.
        self.incarnation = incarnation
        self.applied = 0
        # Pruning summary, widened in lock-step with every apply() — the
        # bookkeeping rides on the commit's existing CPU charge.
        self.summary = PartitionSummary()

    # On-disk footprint multiplier: the attribute store plus roughly one
    # serialized structure per index (B+tree, hash, serialized KD-tree).
    _INDEX_BYTES_FACTOR = 4

    def resident_bytes(self) -> int:
        """Bytes this ACG's indices occupy when loaded into RAM.

        The prototype stores each group's indices serialized (notably the
        KD-tree) and loads them whole to serve a query — this is the unit
        of the residency/eviction model in :class:`IndexNode`.
        """
        return 4096 + self._INDEX_BYTES_FACTOR * self.store.estimated_bytes()

    def ensure_index(self, spec: IndexSpec) -> Index:
        """Instantiate the index for ``spec`` on first use."""
        index = self.indexes.get(spec.name)
        if index is None:
            kwargs = {}
            if spec.kind is IndexKind.KDTREE:
                kwargs["dimensions"] = len(spec.attrs)
            index = make_index(spec.kind, **kwargs)
            self.indexes[spec.name] = index
            self.specs[spec.name] = spec
        return index

    # -- applying committed updates ------------------------------------------

    def _index_key(self, spec: IndexSpec, attrs: Dict[str, Any]) -> Optional[Any]:
        if spec.kind is IndexKind.KDTREE:
            values = [attrs.get(a) for a in spec.attrs]
            # A K-D index covers only files where every attribute is
            # present *and numeric*; others are served by the residual
            # filter path.
            if any(v is None or isinstance(v, (str, bytes)) for v in values):
                return None
            try:
                return tuple(float(v) for v in values)
            except (TypeError, ValueError):
                return None
        value = attrs.get(spec.attrs[0])
        return value

    def _deindex(self, file_id: int) -> None:
        old_attrs = self.store.attrs(file_id)
        old_keywords = self.store.keywords(file_id)
        for name, spec in self.specs.items():
            index = self.indexes[name]
            if spec.attrs[0] == KEYWORD_ATTR and spec.kind is IndexKind.HASH:
                for token in old_keywords:
                    index.remove(token, file_id)
                continue
            key = self._index_key(spec, old_attrs)
            if key is not None:
                index.remove(key, file_id)

    def apply(self, update: IndexUpdate) -> None:
        """Apply one committed update to the store and every index."""
        self.machine.compute(_COMMIT_UPDATE_OPS * max(1, len(self.specs)))
        self.applied += 1
        if update.op is UpdateOp.DELETE:
            self._deindex(update.file_id)
            self.store.drop(update.file_id)
            self.graph.remove_file(update.file_id)
            # Deletes leave the summary wide (safe direction); rebuild
            # deterministically once the slack passes the live set size.
            self.summary.note_delete()
            if self.summary.needs_rebuild(len(self.store)):
                self.machine.compute(
                    _REBUILD_OPS_PER_FILE * max(1, len(self.store)))
                self.summary.rebuild(self.store)
            return
        self._deindex(update.file_id)
        self.store.put(update.file_id, update.attr_dict, path=update.path)
        attrs = self.store.attrs(update.file_id)
        self.summary.observe(attrs, self.store.keywords(update.file_id))
        for name, spec in self.specs.items():
            index = self.indexes[name]
            if spec.attrs[0] == KEYWORD_ATTR and spec.kind is IndexKind.HASH:
                for token in self.store.keywords(update.file_id):
                    index.insert(token, update.file_id)
                continue
            key = self._index_key(spec, attrs)
            if key is not None:
                index.insert(key, update.file_id)

    def apply_batch(self, updates: Sequence[IndexUpdate]) -> None:
        """Apply one group commit: amortized charge, bulk index insert.

        Final index/store/summary state is identical to calling
        :meth:`apply` per update in order (upserts carry complete
        attribute snapshots, so last-write-wins composes), but the work
        is batched: store mutations run in order, index insertions for
        upserted files are deferred, grouped per index, and merged in one
        sorted pass (``bulk_insert``), and the summary widens once per
        batch over the surviving files.  The CPU charge amortizes
        accordingly: full setup once, a marginal cost per update.
        """
        if not updates:
            return
        nspecs = max(1, len(self.specs))
        self.machine.compute(_COMMIT_BATCH_BASE_OPS * nspecs
                             + _COMMIT_BATCHED_UPDATE_OPS * nspecs * len(updates))
        # Files upserted in this batch whose index entries are deferred
        # (dict preserves first-upsert order for deterministic inserts).
        pending: Dict[int, None] = {}
        for update in updates:
            self.applied += 1
            file_id = update.file_id
            if update.op is UpdateOp.DELETE:
                pending.pop(file_id, None)
                self._deindex(file_id)
                self.store.drop(file_id)
                self.graph.remove_file(file_id)
                self.summary.note_delete()
                if self.summary.needs_rebuild(len(self.store)):
                    self.machine.compute(
                        _REBUILD_OPS_PER_FILE * max(1, len(self.store)))
                    self.summary.rebuild(self.store)
                continue
            if file_id not in pending:
                # First touch this batch: clear the file's live index
                # entries once; re-upserts below only refresh the store.
                self._deindex(file_id)
                pending[file_id] = None
            self.store.put(update.file_id, update.attr_dict, path=update.path)
        entries: List[Tuple[Dict[str, Any], Sequence[str]]] = []
        by_index: Dict[str, List[Tuple[Any, int]]] = {}
        for file_id in pending:
            if file_id not in self.store:
                continue
            attrs = self.store.attrs(file_id)
            keywords = self.store.keywords(file_id)
            entries.append((attrs, keywords))
            for name, spec in self.specs.items():
                if spec.attrs[0] == KEYWORD_ATTR and spec.kind is IndexKind.HASH:
                    by_index.setdefault(name, []).extend(
                        (token, file_id) for token in keywords)
                    continue
                key = self._index_key(spec, attrs)
                if key is not None:
                    by_index.setdefault(name, []).append((key, file_id))
        self.summary.observe_batch(entries)
        for name, pairs in by_index.items():
            index = self.indexes[name]
            bulk = getattr(index, "bulk_insert", None)
            if bulk is not None:
                bulk(pairs)
            else:
                for key, file_id in pairs:
                    index.insert(key, file_id)

    @property
    def file_count(self) -> int:
        """Files this replica currently indexes."""
        return len(self.store)


@dataclass
class PrimaryReplState:
    """What a primary keeps per replicated partition it owns (RF > 1).

    ``acked`` maps a follower to the highest sequence it confirmed
    applying; ``-1`` marks a follower assigned but not yet installed
    (the catch-up path bootstraps it with a snapshot first).
    """

    repl_epoch: int = 1
    log: ReplicationLog = field(default_factory=ReplicationLog)
    followers: Tuple[str, ...] = ()
    acked: Dict[str, int] = field(default_factory=dict)


@dataclass
class FollowerState:
    """An in-memory follower replica of a partition primaried elsewhere.

    Purely volatile: a follower crash loses it (the primary re-installs
    on catch-up) and it never counts toward the node's owned replicas —
    ownership, heartbeat sizes, and chaos presence checks all ignore it.
    """

    primary: str
    repl_epoch: int
    replica: AcgReplica
    applied_seq: int = 0
    last_apply_t: float = 0.0


class IndexNode:
    """One Propeller Index Node."""

    def __init__(self, name: str, machine: Machine,
                 cache_timeout_s: float = DEFAULT_TIMEOUT_S) -> None:
        self.name = name
        self.machine = machine
        # Log appends are absorbed by the drive's write-back cache (the
        # testbed's Barracuda has 32 MB of it), so they pay bandwidth but
        # not a head seek even when interleaved with index I/O.  A
        # dedicated DiskDevice keeps the log's sequential stream separate
        # from the index pages' random stream on the shared clock.
        from repro.sim.disk import DiskDevice

        self._log_device = DiskDevice(machine.clock, machine.disk.model)
        self.wal = WriteAheadLog(self._log_device)
        # Checkpoint/adoption I/O goes to *shared storage* (Figure 5), a
        # different set of spindles than the node's local index disk — so
        # it gets its own device and never steals the local head.
        self._shared_device = DiskDevice(machine.clock, machine.disk.model)
        # Residency model: an ACG's serialized indices are loaded whole
        # (one seek + a sequential transfer) the first time they are
        # touched and stay in RAM until evicted LRU when the node's share
        # of indices outgrows its memory.  This is the page-fault
        # behaviour behind Table IV's super-linear scaling knee.
        self._resident: "OrderedDict[int, int]" = OrderedDict()
        self._resident_bytes = 0
        # Shared storage (attached by the service): indices and ACGs are
        # checkpointed here as regular files, and failover restores from
        # here (Section IV).
        self.shared_vfs = None
        self.cache = IndexCache(self._commit_updates, timeout_s=cache_timeout_s)
        self.tracer = NULL_TRACER
        self.freshness = NULL_FRESHNESS
        # Cluster event journal (lifecycle, fences, deposals); wired by
        # the deployment, inert by default.
        self.journal = NULL_JOURNAL
        self.replicas: Dict[int, AcgReplica] = {}
        self._global_specs: Dict[str, IndexSpec] = {}
        # Monotonic replica-incarnation counter: every replica this node
        # ever creates gets a distinct incarnation, making commit
        # watermarks identity-scoped (see AcgReplica.__init__).
        self._next_incarnation = 0
        # Per-ACG query result cache: (acg_id, canonical predicate,
        # index-name tuple) -> (watermark-tail, SearchResult).  Entries
        # are valid only while the replica's (incarnation, applied) pair
        # still matches — a commit invalidates by watermark advance, for
        # free.  Time-dependent predicates are never cached.
        self._result_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        self.result_cache_hits = 0
        self.result_cache_misses = 0
        # Ops/benchmarking knob: False bypasses the result cache so every
        # search pays the real plan/scan cost (e.g. to measure residency).
        self.result_caching = True
        # Prune-validation outcomes (client-requested skips this node
        # confirmed vs. had to search anyway).
        self.prunes_validated = 0
        self.prune_fallbacks = 0
        # Crash-consistency bookkeeping: when this node last persisted
        # its ACGs to shared storage (failover restores that snapshot),
        # and how many WAL records recovery has had to drop at torn or
        # corrupt tails over the node's lifetime.
        self.last_checkpoint_t: float = 0.0
        self.wal_replay_dropped_total = 0
        self.wal_replay_skipped_total = 0
        # Routing-epoch state.  ``route_epoch_seen`` is the newest epoch
        # the Master has told this node about (ownership grants and
        # migration flips); it is echoed in NACKs and search replies so
        # stale clients notice.  ``handoff_intents`` maps an ACG this
        # node transferred out (but has not yet been told to drop) to the
        # migration target: while the intent stands the node *forwards*
        # updates there instead of applying them, and WAL replay skips
        # the ACG's records.  The intent is durable — it survives a crash
        # exactly like the replicas do — which is what makes a migration
        # racing a source crash safe.
        self.route_epoch_seen = 0
        self.handoff_intents: Dict[int, str] = {}
        # ACGs this node migrated away and dropped: WAL replay must skip
        # their records (resurrecting them would double-host data the new
        # owner serves).  Durable like the intents; cleared the moment
        # ownership comes back.
        self.migrated_away: Set[int] = set()
        # Commit watermark per ACG: how many of the WAL's records for the
        # ACG have already been committed to the (disk-backed) store.
        # Replay skips that already-durable prefix — re-applying it is
        # not idempotent when the log's *tail* was torn off: a committed
        # upsert replayed over a committed-then-torn delete would
        # resurrect the deleted file.  Durable like the intents; the
        # bookkeeping rides on the commit's existing write (zero extra
        # simulated cost).
        self._wal_commit_counts: Dict[int, int] = {}
        self.forwarded_updates = 0
        self.stale_route_nacks = 0
        # Updates committed for an ACG while under a handoff intent — the
        # chaos checker asserts this stays zero (no non-owner applies).
        self.nonowner_applied = 0
        # Attached by the service: lets this node forward updates during
        # a migration's dual-ownership window.
        self.rpc = None
        # Hot-path batching knobs (service-wide; see PropellerService
        # ``batching``).  ``group_commit`` turns an update envelope into
        # one WAL batch record + one fsync and commits it with one bulk
        # index apply; ``vectorized_postings`` runs searches through the
        # roaring-style posting-list path.  Both False reproduce the
        # legacy per-op path byte-for-byte (the chaos bit-determinism
        # baseline).
        self.group_commit = True
        self.vectorized_postings = True
        # Tiered storage (service-wide knob; see PropellerService
        # ``set_tiering``).  Off by default: the freeze driver, the
        # frozen search path, and every cold-tier charge are gated on
        # ``tiering``, so the default path is byte-identical to the
        # non-tiered node.  ``object_store`` is attached by the service;
        # ``frozen`` maps ACG id → the RAM-resident record of its cold
        # segment (summary sidecar + sizes); the live replica stays in
        # ``replicas`` as the durable backing (analogous to the disk
        # copy in the residency model) but leaves the ``_resident``
        # budget, which is what flattens the paging knee.
        self.tiering = False
        self.object_store = None
        self.tier_policy = TierPolicy()
        self.segment_cache = SegmentCache(machine.spec.ram_bytes)
        self.frozen: Dict[int, FrozenPartition] = {}
        # Per-ACG last search/update time — the heat stat the freeze
        # policy reads.  Pure bookkeeping: no simulated cost.
        self._acg_last_access: Dict[int, float] = {}
        self.tier_freezes = 0
        self.tier_thaws = 0
        self.tier_hydrations = 0
        self.tier_fallbacks = 0
        self.tier_summary_prunes = 0
        self.tier_repairs = 0
        # Metrics registry (attached by the service; None when the node
        # runs bare in tests).  Observations are bookkeeping only — they
        # charge no simulated time.
        self.registry = None
        # Replication (RF > 1).  ``repl`` holds per-partition primary
        # state (log + follower ack map) for partitions this node owns;
        # ``followers`` holds the in-memory follower replicas it keeps
        # for partitions primaried elsewhere.  Both empty at RF=1, so
        # replication costs nothing when it is off.
        self.repl: Dict[int, PrimaryReplState] = {}
        self.followers: Dict[int, FollowerState] = {}
        self.repl_streamed = 0
        self.repl_catchups = 0
        # Times this node noticed it was deposed as a partition's primary
        # (a follower rejected its stream/install with a newer epoch).
        self.repl_deposed = 0
        # Master-term fencing: the newest master term any stamped RPC has
        # carried, and how many stale-term RPCs this node rejected.
        self.master_term_seen = 0
        self.master_fences = 0
        self.endpoint = RpcEndpoint(name)
        for method, handler in [
            ("index_update", self.handle_index_update),
            ("search", self.handle_search),
            ("flush_acg", self.handle_flush_acg),
            ("create_index", self.handle_create_index),
            ("compute_split", self.handle_compute_split),
            ("extract_partition", self.handle_extract_partition),
            ("install_partition", self.handle_install_partition),
            ("drop_partition", self.handle_drop_partition),
            ("heartbeat", self.make_heartbeat),
            ("adopt_acg", self.handle_adopt_acg),
            ("explain", self.handle_explain),
            ("own_partition", self.handle_own_partition),
            ("transfer_out", self.handle_transfer_out),
            ("finish_migration", self.handle_finish_migration),
            ("cancel_transfer", self.handle_cancel_transfer),
            ("checkpoint_acg", self.handle_checkpoint_acg),
            ("locate_file", self.handle_locate_file),
            ("set_followers", self.handle_set_followers),
            ("replicate_apply", self.handle_replicate_apply),
            ("install_follower", self.handle_install_follower),
            ("replica_watermark", self.handle_replica_watermark),
            ("promote_replica", self.handle_promote_replica),
            ("drop_follower", self.handle_drop_follower),
            ("reset_follower_ack", self.handle_reset_follower_ack),
            ("search_replica", self.handle_search_replica),
        ]:
            if method in _MASTER_RPCS:
                handler = self._with_term_fence(method, handler)
            self.endpoint.register(method, handler)

    def _with_term_fence(self, rpc_name: str, handler) -> Any:
        """Wrap a Master-originated handler with the master-term fence."""
        def fenced(*args: Any, term: int = 0, **kwargs: Any) -> Any:
            self._fence_term(term, rpc_name)
            return handler(*args, **kwargs)
        return fenced

    def _fence_term(self, term: int, rpc_name: str) -> None:
        """Reject an RPC stamped with a master term this node has seen
        superseded; adopt newer terms.  ``term`` 0 means unstamped."""
        if term == 0:
            return
        if term < self.master_term_seen:
            self.master_fences += 1
            self.journal.emit("master.fence", node=self.name, rpc=rpc_name,
                              stale_term=term, term=self.master_term_seen)
            raise StaleMasterTerm(
                f"{self.name}: {rpc_name} from master term {term} behind "
                f"seen term {self.master_term_seen}",
                term=self.master_term_seen)
        self.master_term_seen = term

    def set_tracer(self, tracer) -> None:
        """Thread one tracer through this node's cache and devices."""
        self.tracer = tracer
        self.cache.tracer = tracer
        self.machine.disk.tracer = tracer
        self.machine.page_cache.tracer = tracer
        self._log_device.tracer = tracer
        self._shared_device.tracer = tracer

    # -- replica management -----------------------------------------------------

    def replica(self, acg_id: int, create: bool = False) -> AcgReplica:
        """Fetch (or lazily create) this node's replica of one ACG."""
        replica = self.replicas.get(acg_id)
        if replica is None:
            if not create:
                raise UnknownAcg(f"{self.name} does not host ACG {acg_id}")
            self._next_incarnation += 1
            replica = AcgReplica(acg_id, self.machine,
                                 incarnation=self._next_incarnation)
            for spec in self._global_specs.values():
                replica.ensure_index(spec)
            self.replicas[acg_id] = replica
            # Hosting again: the ACG's migrated-away tombstone (if any)
            # no longer applies.
            self.migrated_away.discard(acg_id)
        return replica

    # -- residency ---------------------------------------------------------

    def _ensure_resident(self, acg_id: int) -> None:
        """Load an ACG's serialized indices into RAM if they are not
        there (one seek plus a sequential transfer), evicting LRU ACGs
        when the node's memory budget is exceeded."""
        replica = self.replicas.get(acg_id)
        if replica is None:
            return
        nbytes = replica.resident_bytes()
        if acg_id in self._resident:
            self._resident_bytes += nbytes - self._resident[acg_id]
            self._resident[acg_id] = nbytes
            self._resident.move_to_end(acg_id)
            self.machine.clock.charge(1e-6)
            return
        self.machine.disk.reset_head()
        self.machine.disk.read((acg_id % 4096) << 24, nbytes)
        self._resident[acg_id] = nbytes
        self._resident_bytes += nbytes
        while (self._resident_bytes > self.machine.spec.ram_bytes
               and len(self._resident) > 1):
            victim, vbytes = self._resident.popitem(last=False)
            self._resident_bytes -= vbytes

    def is_resident(self, acg_id: int) -> bool:
        """Whether an ACG's indices are currently loaded in RAM."""
        return acg_id in self._resident

    def drop_resident(self) -> None:
        """Cold-start: forget every loaded ACG (cf. dropping page caches).

        Hydrated segment views are part of the same cold-start surface,
        so the segment cache empties too (a no-op with tiering off)."""
        self._resident.clear()
        self._resident_bytes = 0
        self.segment_cache.clear()

    def drop_caches(self) -> None:
        """Memory-pressure eviction of the node-local volatile caches:
        the search result cache and the hydrated segment views.  The
        next search against a frozen partition must go back to the cold
        tier — the path the chaos harness's cache-pressure op exists to
        exercise.  Resident index bodies stay loaded (that cold-start
        surface belongs to :meth:`drop_resident`)."""
        self._result_cache.clear()
        self.segment_cache.clear()

    def handle_create_index(self, spec: IndexSpec) -> None:
        """Register a user-defined index; existing replicas backfill."""
        self._global_specs[spec.name] = spec
        for replica in self.replicas.values():
            self._backfill_index(replica, spec)
        for follower in self.followers.values():
            self._backfill_index(follower.replica, spec)

    @staticmethod
    def _backfill_index(replica: AcgReplica, spec: IndexSpec) -> None:
        index = replica.ensure_index(spec)
        for file_id in replica.store.file_ids():
            attrs = replica.store.attrs(file_id)
            if spec.attrs[0] == KEYWORD_ATTR and spec.kind is IndexKind.HASH:
                for token in replica.store.keywords(file_id):
                    index.insert(token, file_id)
                continue
            key = replica._index_key(spec, attrs)
            if key is not None:
                index.insert(key, file_id)

    # -- routing-epoch ownership ---------------------------------------------------

    def owns(self, acg_id: int) -> bool:
        """Whether this node currently owns an ACG for epoch-stamped
        traffic: it hosts a replica and has not handed it off."""
        return acg_id in self.replicas and acg_id not in self.handoff_intents

    def watermark(self, acg_id: int) -> Tuple[str, int, int]:
        """The commit watermark of one hosted replica: (node, replica
        incarnation, applied-update count).  Identity-scoped, so a
        watermark taken from a previous life of the ACG — on this node
        or any other — can never equal the current one."""
        replica = self.replicas[acg_id]
        return (self.name, replica.incarnation, replica.applied)

    def handle_own_partition(self, acg_id: int, epoch: int) -> None:
        """Master grant: this node owns ``acg_id`` as of ``epoch``.

        Creates an empty replica shell if needed, so epoch-stamped
        updates and searches are accepted immediately."""
        self._clear_stale_handoff(acg_id)
        self.route_epoch_seen = max(self.route_epoch_seen, epoch)
        self.replica(acg_id, create=True)

    def _clear_stale_handoff(self, acg_id: int) -> None:
        """Ownership is coming (back) to this node: a replica still held
        behind an old handoff intent is stale debris — drop it so the
        incoming copy starts clean."""
        if acg_id in self.handoff_intents:
            self.handoff_intents.pop(acg_id, None)
            self._log_device.append(64)
            self.handle_drop_partition(acg_id)

    def _forward_updates(self, acg_id: int, updates: Sequence[IndexUpdate],
                         epoch: Optional[int]) -> int:
        """Dual-ownership window: relay updates to the migration target.

        The relay stays epoch-stamped so a target that does not own the
        ACG either (an aborted migration's debris) NACKs instead of
        silently absorbing updates the Master still routes here."""
        target = self.handoff_intents[acg_id]
        if self.rpc is None:
            self.stale_route_nacks += len(updates)
            raise StaleRoute(f"{self.name} handed off ACG {acg_id}",
                             epoch=self.route_epoch_seen)
        self.forwarded_updates += len(updates)
        stamp = epoch if epoch is not None else self.route_epoch_seen
        return self.rpc.call(target, "index_update", acg_id, updates,
                             epoch=stamp)

    # -- update path --------------------------------------------------------------

    def handle_index_update(self, acg_id: int, updates: Sequence[IndexUpdate],
                            epoch: Optional[int] = None) -> int:
        """WAL + cache; returns number of updates acknowledged.

        Epoch-stamped batches (``epoch`` is not None) are only accepted
        for ACGs this node owns: a handed-off ACG forwards to the
        migration target, anything else raises :class:`StaleRoute` so the
        client refreshes its route cache.  Unstamped batches keep the
        legacy Master-routed semantics (create-on-demand), except that a
        handoff intent still forwards — the old owner must never apply."""
        if acg_id in self.handoff_intents:
            return self._forward_updates(acg_id, updates, epoch)
        if epoch is not None and acg_id not in self.replicas:
            self.stale_route_nacks += len(updates)
            raise StaleRoute(f"{self.name} does not own ACG {acg_id}",
                             epoch=self.route_epoch_seen)
        if acg_id in self.frozen:
            # Writes thaw: the partition returns to the live B+tree/hash
            # path before the update takes the ordinary WAL→cache route.
            self._thaw(acg_id, reason="write")
        replica = self.replica(acg_id, create=True)
        now = self.machine.clock.now()
        self._acg_last_access[acg_id] = now
        if self.registry is not None and updates:
            self.registry.histogram("update.batch_size", unit="updates")\
                .observe(len(updates))
        if self.group_commit and updates:
            # Group commit: the whole envelope becomes one WAL batch
            # record — one frame, one simulated fsync — and the cache
            # insert pays full price once plus a marginal cost per rider.
            self.wal.append_batch(acg_id, tuple(
                (acg_id, u.file_id, u.op.value, u.path, u.attrs)
                for u in updates))
            self.machine.compute(
                _CACHE_ADD_OPS + _CACHE_ADD_BATCHED_OPS * (len(updates) - 1))
            for update in updates:
                self.cache.add(acg_id, update, now)
        else:
            for update in updates:
                self.wal.append((acg_id, update.file_id, update.op.value,
                                 update.path, update.attrs))
                self.machine.compute(_CACHE_ADD_OPS)
                self.cache.add(acg_id, update, now)
        state = self.repl.get(acg_id)
        if state is None:
            return len(updates)
        # Replicated partition: sequence the batch in the replication log
        # and stream it to installed followers before acking.  A follower
        # that cannot be reached just falls behind (its ack watermark
        # stays put); the periodic catch-up re-sends the suffix — the
        # client's ack never hinges on follower liveness.
        if self.group_commit and updates:
            # One log record per batch: primaries, followers, and hedged
            # reads advance their watermarks at identical batch
            # boundaries, so a partially-visible envelope is impossible.
            state.log.append(tuple(updates))
        else:
            for update in updates:
                state.log.append(update)
        self._stream_to_followers(acg_id, state)
        return UpdateAck(len(updates), acg_id=acg_id, seq=state.log.last_seq,
                         repl_epoch=state.repl_epoch)

    def _commit_updates(self, acg_id: int, updates: List[IndexUpdate]) -> None:
        from repro.errors import DiskIOError

        if acg_id in self.handoff_intents:
            self.nonowner_applied += len(updates)
        # Advance the durable commit watermark: these records' effects
        # now live in the store, so a crash-replay must not redo them.
        self._wal_commit_counts[acg_id] = (
            self._wal_commit_counts.get(acg_id, 0) + len(updates))
        replica = self.replica(acg_id, create=True)
        try:
            self._ensure_resident(acg_id)
        except DiskIOError:
            # An injected read error while paging the ACG in: the commit
            # itself must not be lost (the updates are acknowledged), so
            # absorb the fault — the store is authoritative; residency is
            # a cost-model event, retried on the next touch.
            pass
        if self.group_commit:
            replica.apply_batch(updates)
        else:
            for update in updates:
                replica.apply(update)
        # Commit is the moment an update becomes search-visible: resolve
        # any freshness stamps now (bookkeeping only, zero simulated cost).
        now = self.machine.clock.now()
        for update in updates:
            self.freshness.visible(self.name, update.file_id, now)

    def tick(self) -> int:
        """Commit timed-out cache buckets (called by the event loop).

        With tiering on, also runs the freeze policy: partitions cold
        past the policy's age threshold are serialized to the object
        store.  The driver is fully gated on ``tiering`` so the default
        path charges nothing extra."""
        committed = self.cache.commit_due(self.machine.clock.now())
        if committed and not len(self.cache):
            self._truncate_wal()
        if self.tiering and self.object_store is not None:
            self._freeze_cold(self.machine.clock.now())
        for acg_id in sorted(self.repl):
            state = self.repl[acg_id]
            if any(state.acked.get(f, -1) < state.log.last_seq
                   for f in state.followers):
                self._sync_followers(acg_id)
        return committed

    def _truncate_wal(self) -> None:
        """Discard the WAL once nothing in it is still pending; the
        commit watermarks restart with the empty log."""
        self.wal.truncate()
        self._wal_commit_counts.clear()

    # -- tiered storage: freeze / thaw / hydrate ----------------------------------------

    def _freeze_cold(self, now: float) -> None:
        """Freeze every owned partition the tier policy calls cold.

        Eligibility: owned (no handoff intent), not already frozen,
        nothing pending in the index cache (freezing under pending
        updates would immediately thaw), and cold/big enough per
        :class:`~repro.cluster.segments.TierPolicy`.
        """
        for acg_id in sorted(self.replicas):
            if acg_id in self.frozen or not self.owns(acg_id):
                continue
            if self.cache.pending_ops(acg_id):
                continue
            replica = self.replicas[acg_id]
            last = self._acg_last_access.get(acg_id, 0.0)
            if not self.tier_policy.should_freeze(
                    now, last, replica.store.estimated_bytes()):
                continue
            self._freeze_one(acg_id, replica, now)

    def _freeze_one(self, acg_id: int, replica: AcgReplica, now: float) -> None:
        """Serialize one partition to the cold tier and mark it frozen.

        The live replica stays in ``replicas`` (ownership, watermarks,
        heartbeat sizes, locate probes and the replication stream all
        keep working) but leaves the RAM residency budget — only the
        small summary sidecar stays resident.
        """
        self.machine.compute(_FREEZE_OPS_PER_FILE * max(1, replica.file_count))
        data = dump_segment(replica, self.name)
        key = segment_key(self.name, acg_id)
        self.object_store.put(key, data)
        watermark = self.watermark(acg_id)
        snapshot = replica.summary.snapshot(
            acg_id, watermark, dirty=False, file_count=replica.file_count)
        self.frozen[acg_id] = FrozenPartition(
            acg_id=acg_id, key=key, serialized_bytes=len(data),
            hydrated_bytes=256 + replica.store.estimated_bytes(),
            snapshot=snapshot, frozen_at=now, watermark=watermark)
        if acg_id in self._resident:
            self._resident_bytes -= self._resident.pop(acg_id)
        self.tier_freezes += 1
        self.journal.emit("tier.freeze", node=self.name, acg_id=acg_id,
                          segment_bytes=len(data))

    def _thaw(self, acg_id: int, reason: str) -> None:
        """Return a frozen partition to the live path (first write, or
        an operation that must mutate the replica)."""
        frozen = self.frozen.pop(acg_id, None)
        if frozen is None:
            return
        self.segment_cache.invalidate(frozen.key)
        if self.object_store is not None:
            self.object_store.delete(frozen.key)
        self.tier_thaws += 1
        self.journal.emit("tier.thaw", node=self.name, acg_id=acg_id,
                          reason=reason)

    def _hydrate(self, acg_id: int, frozen: FrozenPartition):
        """Fetch + parse one segment from the cold tier (cache miss path).

        Returns the hydrated view, or None when the cold tier cannot
        serve it — one retry for a transient object-store error, a
        repair (re-dump from the live backing replica) for a corrupt
        segment; either way the caller falls back to the replica.
        """
        t0 = self.machine.clock.now()
        with self.tracer.span("hydrate", node=self.name, acg=acg_id) as span:
            try:
                try:
                    data = self.object_store.get(frozen.key)
                except ObjectStoreError:
                    # One retry: cold-tier reads are cheap to re-issue
                    # and transient errors are the common injected case.
                    data = self.object_store.get(frozen.key)
                view = load_segment(data)
            except SegmentCorruption:
                # Torn/corrupt segment: hydrate-from-replica.  The live
                # backing replica is authoritative — re-dump it so the
                # next hydration reads a good copy, and serve this query
                # from the replica.
                self._repair_segment(acg_id, frozen)
                return None
            except ObjectStoreError:
                return None
            self.machine.compute(
                _HYDRATE_OPS_PER_FILE * max(1, view.file_count()))
            span.set_attribute("segment_bytes", frozen.serialized_bytes)
        self.tier_hydrations += 1
        if self.registry is not None:
            self.registry.histogram("tier.hydration_s", unit="s")\
                .observe(self.machine.clock.now() - t0)
        self.segment_cache.put(frozen.key, view)
        return view

    def _repair_segment(self, acg_id: int, frozen: FrozenPartition) -> None:
        """Overwrite a corrupt segment with a fresh dump of the live
        backing replica (the hydrate-from-replica self-heal)."""
        replica = self.replicas.get(acg_id)
        if replica is None or self.object_store is None:
            return
        self.machine.compute(_FREEZE_OPS_PER_FILE * max(1, replica.file_count))
        self.object_store.put(frozen.key, dump_segment(replica, self.name))
        self.tier_repairs += 1
        self.journal.emit("tier.repair", node=self.name, acg_id=acg_id)

    def frozen_bytes(self) -> int:
        """Serialized bytes this node keeps on the cold tier."""
        return sum(f.serialized_bytes for f in self.frozen.values())

    # -- search path ------------------------------------------------------------------

    def handle_locate_file(self, file_id: int) -> Optional[int]:
        """Presence probe: which owned ACG holds ``file_id``, if any.

        Serves clients whose file routes were evicted by a full
        route-table refresh — the Master does not track client-placed
        membership, so without this probe a DELETE for such a file has
        nowhere correct to go.  Handed-off replicas are excluded: the
        migration target answers for those."""
        for acg_id in sorted(self.replicas):
            if not self.owns(acg_id):
                continue
            if file_id in self.replicas[acg_id].store:
                return acg_id
            # A just-indexed file can still sit in the pending cache;
            # the last buffered op for the file decides its presence.
            last_op = None
            for update in self.cache.pending_ops(acg_id):
                if update.file_id == file_id:
                    last_op = update.op
            if last_op is UpdateOp.UPSERT:
                return acg_id
        return None

    def _materialize_units(self, matches: int) -> int:
        """Examine charges to materialize ``matches`` result docs.

        The legacy set path touches one doc per charge; the bitmap
        posting path extracts matches word-at-a-time, so one charge
        covers ``_VECTOR_WIDTH`` of them (ceil — a partial word still
        costs a word).
        """
        if not self.vectorized_postings:
            return matches
        return (matches + _VECTOR_WIDTH - 1) // _VECTOR_WIDTH

    def _purge_result_cache(self, acg_id: int) -> None:
        for key in [k for k in self._result_cache if k[0] == acg_id]:
            del self._result_cache[key]

    def _search_one(self, acg_id: int, predicate: Predicate,
                    index_names: Optional[Sequence[str]]) -> SearchResult:
        now = self.machine.clock.now()
        self._acg_last_access[acg_id] = now
        self.cache.commit_for_search(acg_id)
        # Result cache: checked *after* the forced commit, so any pending
        # updates have already advanced the watermark and a stale entry
        # cannot hit.  Time-dependent predicates (symbolic RelativeAge
        # bounds) are excluded — their answer can change with no commit.
        # Sound for frozen partitions too: freezing requires an empty
        # cache and writes thaw first, so the (incarnation, applied) tail
        # cannot move while frozen.
        cache_key = None
        if self.result_caching and not is_time_dependent(predicate):
            replica = self.replicas[acg_id]
            cache_key = (acg_id, canonicalize(predicate),
                         tuple(index_names) if index_names else None)
            entry = self._result_cache.get(cache_key)
            if entry is not None:
                tail, cached = entry
                if tail == (replica.incarnation, replica.applied):
                    self._result_cache.move_to_end(cache_key)
                    self.result_cache_hits += 1
                    self.machine.compute(_EXAMINE_OPS)  # lookup, no scan
                    return cached
            self.result_cache_misses += 1
        if acg_id in self.frozen:
            result = self._search_frozen(acg_id, predicate, index_names, now)
        else:
            result = self._search_live_body(acg_id, predicate, index_names, now)
        if cache_key is not None:
            replica = self.replicas[acg_id]
            self._result_cache[cache_key] = (
                (replica.incarnation, replica.applied), result)
            self._result_cache.move_to_end(cache_key)
            while len(self._result_cache) > _RESULT_CACHE_CAP:
                self._result_cache.popitem(last=False)
        return result

    def _search_live_body(self, acg_id: int, predicate: Predicate,
                          index_names: Optional[Sequence[str]],
                          now: float) -> SearchResult:
        """The live (B+tree/hash) execution body of one search leg."""
        with self.tracer.span("page_faults", node=self.name, acg=acg_id) as span:
            span.set_attribute("resident", self.is_resident(acg_id))
            self._ensure_resident(acg_id)
        replica = self.replicas[acg_id]
        specs = [replica.specs[n] for n in (index_names or replica.specs)
                 if n in replica.specs]
        with self.tracer.span("plan", node=self.name, acg=acg_id) as span:
            plans = plan_query_set(predicate, specs, now)
            span.set_attribute(
                "access_path", "; ".join(p.describe() for p in plans))
        with self.tracer.span("index_scan", node=self.name, acg=acg_id) as span:
            self.machine.compute(_EXAMINE_OPS * max(1, replica.file_count // 64))
            file_ids = execute_plans(plans, predicate, replica.indexes,
                                     replica.store, now,
                                     use_postings=self.vectorized_postings)
            self.machine.compute(
                _EXAMINE_OPS * self._materialize_units(len(file_ids)))
            span.set_attribute("matches", len(file_ids))
        paths = tuple(sorted(
            p for p in (replica.store.attrs(f).get("path") for f in file_ids)
            if p is not None))
        return SearchResult(node=self.name, acg_id=acg_id,
                            file_ids=frozenset(file_ids), paths=paths)

    def _search_frozen(self, acg_id: int, predicate: Predicate,
                       index_names: Optional[Sequence[str]],
                       now: float) -> SearchResult:
        """Execute one search leg against a frozen partition.

        Order of consultation: (1) the resident summary sidecar — a
        provably-empty answer never touches the cold tier; (2) the
        node-local segment cache; (3) hydrate from the object store on a
        miss.  If the cold tier cannot serve the segment (persistent
        read errors, corruption) the leg falls back to the live backing
        replica — answers degrade to slower, never to wrong.
        """
        frozen = self.frozen[acg_id]
        self.machine.compute(_EXAMINE_OPS)
        if not summary_may_match(frozen.snapshot, predicate, now):
            # Zone maps / bloom say no possible match: byte-identical to
            # the empty answer a full scan would produce (fail-open
            # summaries only ever return False when provably empty).
            self.tier_summary_prunes += 1
            return SearchResult(node=self.name, acg_id=acg_id,
                                file_ids=frozenset(), paths=())
        view = self.segment_cache.get(frozen.key)
        if view is None:
            view = self._hydrate(acg_id, frozen)
        if view is None:
            # Cold tier unavailable: serve from the live backing replica
            # (still frozen — the next leg tries the cold tier again).
            self.tier_fallbacks += 1
            return self._search_live_body(acg_id, predicate, index_names, now)
        with self.tracer.span("segment_scan", node=self.name, acg=acg_id) as span:
            self.machine.compute(_EXAMINE_OPS * max(1, view.file_count() // 64))
            file_ids = view.search(predicate, now,
                                   use_postings=self.vectorized_postings)
            self.machine.compute(
                _EXAMINE_OPS * self._materialize_units(len(file_ids)))
            span.set_attribute("matches", len(file_ids))
        paths = tuple(sorted(
            p for p in (view.store.attrs(f).get("path") for f in file_ids)
            if p is not None))
        return SearchResult(node=self.name, acg_id=acg_id,
                            file_ids=frozenset(file_ids), paths=paths)

    def handle_search(self, acg_ids: Sequence[int], predicate: Predicate,
                      index_names: Optional[Sequence[str]] = None,
                      epoch: Optional[int] = None,
                      pruned: Optional[Dict[int, Tuple[str, int, int]]] = None):
        """Search the given ACGs; commits their pending updates first.

        Legacy (unstamped) calls silently skip ACGs this node does not
        host and return a bare result list.  Epoch-stamped calls return a
        :class:`SearchReply` that also *names* the requested ACGs this
        node does not own (``not_owned``) — the search-path stale-route
        NACK — plus the node's own routing epoch.

        ``pruned`` maps ACG ids the client wants to *skip* to the summary
        watermark its skip decision was based on.  The skip is honoured
        only when this node can prove it safe: it owns the ACG, nothing
        is pending in the index cache, and the watermark matches the
        replica's current one exactly.  Anything else — stale summary,
        pending updates, recreated replica — fails open and is searched
        like a normal leg.  This is what makes pruning false negatives
        impossible: the node, which has ground truth, gets the last word.
        """
        if epoch is None:
            # Legacy path has no validation protocol: never honour skips,
            # just search the pruned ACGs along with the rest.
            ids = list(acg_ids) + [a for a in sorted(pruned or ())
                                   if a not in acg_ids]
            return [self._search_one(acg_id, predicate, index_names)
                    for acg_id in ids if acg_id in self.replicas]
        reply = SearchReply(node=self.name, epoch=self.route_epoch_seen)
        not_owned: List[int] = []
        pruned_ok: List[int] = []
        for acg_id, watermark in sorted((pruned or {}).items()):
            if not self.owns(acg_id):
                not_owned.append(acg_id)
                continue
            if (not self.cache.pending_ops(acg_id)
                    and tuple(watermark) == self.watermark(acg_id)):
                pruned_ok.append(acg_id)
                self.prunes_validated += 1
            else:
                self.prune_fallbacks += 1
                reply.results.append(
                    self._search_one(acg_id, predicate, index_names))
        for acg_id in acg_ids:
            if not self.owns(acg_id):
                not_owned.append(acg_id)
                continue
            reply.results.append(self._search_one(acg_id, predicate, index_names))
        if not_owned:
            self.stale_route_nacks += len(not_owned)
            reply.not_owned = tuple(sorted(not_owned))
        reply.pruned_ok = tuple(sorted(pruned_ok))
        return reply

    def handle_explain(self, acg_ids: Sequence[int], predicate: Predicate,
                       index_names: Optional[Sequence[str]] = None
                       ) -> List[Tuple[int, List[str]]]:
        """EXPLAIN: the access path(s) each ACG would use for a query,
        without executing it (and without forcing cache commits).

        Uses the same ownership test as the search path: a handed-off
        (migrated-away) replica must not report plans for an ACG this
        node no longer answers for."""
        now = self.machine.clock.now()
        out: List[Tuple[int, List[str]]] = []
        for acg_id in acg_ids:
            if not self.owns(acg_id):
                continue
            replica = self.replicas[acg_id]
            specs = [replica.specs[n] for n in (index_names or replica.specs)
                     if n in replica.specs]
            plans = plan_query_set(predicate, specs, now)
            out.append((acg_id, [plan.describe() for plan in plans]))
        return out

    # -- ACG maintenance -------------------------------------------------------------------

    def handle_flush_acg(self, acg_id: int, records: Sequence[Tuple[int, int, int]]) -> None:
        """Merge a client-flushed ACG fragment (weak consistency — no WAL)."""
        replica = self.replica(acg_id, create=True)
        replica.graph.merge(AccessCausalityGraph.from_records(list(records)))
        self.machine.compute(_CACHE_ADD_OPS * max(1, len(records)))

    def handle_compute_split(self, acg_id: int,
                             policy: PartitioningPolicy) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Run the background balanced-minimal-cut split for one ACG."""
        self.cache.commit_for_search(acg_id)
        replica = self.replica(acg_id)
        files = set(replica.store.file_ids())
        halves = split_partition(replica.graph, files, policy)
        if len(halves) == 1:
            halves = [halves[0], set()]
        # METIS-style split cost: roughly linear in edges.
        self.machine.compute(50 * max(1, replica.graph.edge_count))
        return tuple(sorted(halves[0])), tuple(sorted(halves[1]))

    def handle_extract_partition(self, acg_id: int,
                                 file_ids: Optional[Sequence[int]] = None
                                 ) -> Dict[str, Any]:
        """Package the state of ``file_ids`` for migration to another node.

        ``file_ids=None`` means *everything this node hosts* for the ACG
        — the Master uses that for merges, where its own file map may
        under-count client-placed files."""
        # Extraction deletes moved files from the replica — a mutation,
        # so a frozen partition thaws first.
        self._thaw(acg_id, reason="extract")
        self.cache.commit_for_search(acg_id)
        replica = self.replica(acg_id)
        moving = (set(replica.store.file_ids()) if file_ids is None
                  else set(file_ids))
        payload = {
            "acg_records": replica.graph.subgraph(moving).to_records(),
            "files": [
                (f, dict(replica.store.attrs(f)), replica.store.attrs(f).get("path"))
                for f in sorted(moving)
            ],
        }
        # Removing the moved files from local state is part of migration
        # (apply(delete) also drops the ACG vertex).
        for file_id in sorted(moving):
            replica.apply(IndexUpdate.delete(file_id))
        # The deletes above never entered the replication log, so any
        # followers now describe the pre-extraction store.
        self._reset_repl(acg_id)
        return payload

    def handle_install_partition(self, acg_id: int, payload: Dict[str, Any]) -> int:
        """Install a migrated partition as a replica on this node.

        Accepts the legacy ``{"acg_records", "files"}`` payload and the
        tiered transfer format ``{"segment": bytes}`` — a frozen segment
        dumped by the source, which unpacks to the same shape."""
        self._clear_stale_handoff(acg_id)
        if "segment" in payload:
            unpacked = load_segment_payload(payload["segment"])
            payload = {"acg_records": unpacked["acg_records"],
                       "files": unpacked["files"]}
        replica = self.replica(acg_id, create=True)
        replica.graph.merge(AccessCausalityGraph.from_records(payload["acg_records"]))
        for file_id, attrs, path in payload["files"]:
            attrs = dict(attrs)
            attrs.pop("path", None)
            replica.apply(IndexUpdate.upsert(file_id, attrs, path=path))
        # Installed content bypassed the replication log: force followers
        # back through a snapshot bootstrap.
        self._reset_repl(acg_id)
        return len(payload["files"])

    def handle_drop_partition(self, acg_id: int) -> None:
        """Forget a migrated-away ACG entirely."""
        frozen = self.frozen.pop(acg_id, None)
        if frozen is not None:
            self.segment_cache.invalidate(frozen.key)
            if self.object_store is not None:
                self.object_store.delete(frozen.key)
        self._acg_last_access.pop(acg_id, None)
        self.replicas.pop(acg_id, None)
        self.repl.pop(acg_id, None)
        self._purge_result_cache(acg_id)
        if acg_id in self._resident:
            self._resident_bytes -= self._resident.pop(acg_id)

    # -- online migration (source/target protocol half) ---------------------------

    def _checkpoint_one(self, replica: AcgReplica) -> None:
        if self.shared_vfs is None:
            return
        from repro.cluster.persistence import (PROPELLER_ROOT,
                                               checkpoint_replica,
                                               replica_path)

        if replica.acg_id in self.frozen:
            # A frozen partition checkpoints as its segment bytes — the
            # tiered transfer format ``read_checkpoint`` also accepts.
            # Re-dumped from the live backing replica (deterministic, no
            # cold-tier round trip, immune to injected object faults).
            data = dump_segment(replica, self.name)
            self.shared_vfs.mkdir(f"{PROPELLER_ROOT}/{self.name}", parents=True)
            self.shared_vfs.write_bytes(replica_path(self.name, replica.acg_id),
                                        data)
            self._shared_device.reset_head()
            self._shared_device.append(len(data))
            return
        checkpoint_replica(self.shared_vfs, self.name, replica)
        self._shared_device.reset_head()
        self._shared_device.append(replica.resident_bytes())

    def handle_transfer_out(self, acg_id: int, target: str) -> Dict[str, Any]:
        """Migration step 1 (source side): drain, checkpoint, package —
        and durably record the handoff intent.

        Unlike :meth:`handle_extract_partition` this does **not** delete
        anything: the partition stays queryable here until the Master
        flips routing, and the intent makes sure updates forward to
        ``target`` instead of being applied by a no-longer-owner."""
        self.cache.commit_for_search(acg_id)
        replica = self.replica(acg_id, create=True)
        # A fresh shared checkpoint means a source crash before the flip
        # still fails over with all acknowledged data.
        self._checkpoint_one(replica)
        if self.tiering:
            # Tiered transfer format: ship the compressed segment instead
            # of the expanded file list (same payload on the far side).
            payload: Dict[str, Any] = {"segment": dump_segment(replica, self.name)}
        else:
            payload = {
                "acg_records": list(replica.graph.to_records()),
                "files": [
                    (f, dict(replica.store.attrs(f)), replica.store.attrs(f).get("path"))
                    for f in sorted(replica.store.file_ids())
                ],
            }
        self.handoff_intents[acg_id] = target
        # The intent is durable (one small log write): a restart after a
        # crash must keep forwarding and keep WAL replay away from this
        # ACG, or a lost finish_migration would resurrect handed-off data.
        self._log_device.append(64)
        return payload

    def handle_checkpoint_acg(self, acg_id: int) -> None:
        """Persist one ACG to shared storage right now (migration step 2,
        target side: the flip must not outrun durability)."""
        self.cache.commit_for_search(acg_id)
        self._checkpoint_one(self.replica(acg_id, create=True))

    def handle_finish_migration(self, acg_id: int) -> None:
        """Migration step 4 (source side): drop the handed-off replica,
        clear the intent, and remove the stale shared checkpoint so a
        later failover cannot adopt outdated data."""
        self.handoff_intents.pop(acg_id, None)
        self.migrated_away.add(acg_id)
        self._log_device.append(64)
        self.handle_drop_partition(acg_id)
        if self.shared_vfs is not None:
            from repro.cluster.persistence import remove_checkpoint

            remove_checkpoint(self.shared_vfs, self.name, acg_id)

    def handle_cancel_transfer(self, acg_id: int) -> None:
        """Migration abort (source side): lift the handoff intent — this
        node owns the partition again and resumes applying updates."""
        self.handoff_intents.pop(acg_id, None)
        self._log_device.append(64)

    # -- replication (RF > 1): primary half --------------------------------------------------

    def handle_set_followers(self, acg_id: int, followers: Sequence[str],
                             repl_epoch: int) -> None:
        """Master: this node primaries ``acg_id`` with these followers.

        Idempotent and epoch-fenced: a stale (lower-epoch) assignment is
        ignored so a delayed duplicate cannot resurrect old membership.
        Newly assigned followers start un-installed (``acked == -1``) and
        are bootstrapped by the synchronous catch-up that follows.
        """
        if acg_id not in self.replicas:
            raise UnknownAcg(f"{self.name} does not host ACG {acg_id}")
        state = self.repl.get(acg_id)
        if state is None:
            state = self.repl[acg_id] = PrimaryReplState(repl_epoch=repl_epoch)
        elif repl_epoch < state.repl_epoch:
            return
        refresh = repl_epoch > state.repl_epoch
        state.repl_epoch = repl_epoch
        state.followers = tuple(followers)
        state.acked = {f: state.acked.get(f, -1) for f in state.followers}
        if refresh:
            self._refresh_follower_epochs(acg_id, state)
        self._sync_followers(acg_id)

    def _refresh_follower_epochs(self, acg_id: int,
                                 state: PrimaryReplState) -> None:
        """Push a freshly assigned epoch to already-installed followers.

        A membership-only epoch bump does not restart the log, so a
        retained follower has nothing to stream — but it must still
        learn the new epoch, or its heartbeats and live
        ``replica_watermark`` answers keep carrying the old one and the
        Master's promotion-viability check (same epoch, caught-up)
        would refuse a genuinely viable replica.  An empty apply
        carries the epoch; transient failures are absorbed (the next
        stream or install retries).
        """
        if self.rpc is None:
            return
        for follower in state.followers:
            if state.acked.get(follower, -1) < 0:
                continue  # bootstrap install carries the epoch itself
            try:
                self.rpc.call(follower, "replicate_apply", acg_id,
                              state.repl_epoch, ())
            except DEGRADABLE_ERRORS:
                continue
            except StaleReplEpoch:
                self._depose(acg_id)
                return
            except ClusterError:
                state.acked[follower] = -1  # lost its state: re-install

    def _reset_repl(self, acg_id: int) -> None:
        """Partition content changed outside the replication stream
        (split, merge, adoption): the log no longer describes the store,
        so every follower is marked for a fresh snapshot bootstrap.

        The restart begins a new log *generation*, so the replication
        epoch bumps with it: sequence numbers are only comparable within
        one epoch, and without the bump a follower still holding the old
        generation's high watermark could later be mistaken for caught-up
        and promoted with pre-reset data.  The Master bumps its own copy
        in lock-step (forced ``set_followers``) and adopts this one from
        the next heartbeat if its bump was lost.
        """
        state = self.repl.get(acg_id)
        if state is None:
            return
        state.repl_epoch += 1
        state.log = ReplicationLog()
        state.acked = {f: -1 for f in state.followers}

    def _stream_to_followers(self, acg_id: int,
                             state: PrimaryReplState) -> None:
        """Send each installed follower the log suffix past its ack.

        Best-effort: a transient failure detaches nothing — the ack
        watermark simply stays behind and the next tick's catch-up
        retries.  Un-installed followers (``acked == -1``) are skipped;
        bootstrap happens on the catch-up path, not the hot ack path.
        A stale-epoch rejection means a newer primary owns the partition
        — this node self-deposes instead of retrying.
        """
        if self.rpc is None:
            return
        for follower in state.followers:
            acked = state.acked.get(follower, -1)
            if acked < 0 or acked >= state.log.last_seq:
                continue
            records = state.log.since(acked)
            if records is None:
                state.acked[follower] = -1  # trimmed past it: re-install
                continue
            try:
                applied = self.rpc.call(follower, "replicate_apply", acg_id,
                                        state.repl_epoch, records)
            except DEGRADABLE_ERRORS:
                continue
            except StaleReplEpoch:
                self._depose(acg_id)
                return
            except ClusterError:
                state.acked[follower] = -1  # lost its state: re-install
                continue
            state.acked[follower] = applied
            self.repl_streamed += len(records)

    def _depose(self, acg_id: int) -> None:
        """Stop acting as a partition's replication primary.

        Called when a follower fenced this node's stream or install with
        a newer epoch: the partition was failed over (or re-assigned)
        while this node was out of the loop, so its log and ack map are
        another generation's state.  The replica itself stays queryable
        until routing catches up — exactly the migration dual-ownership
        tolerance — but no further streams or installs leave this node.
        """
        self.repl.pop(acg_id, None)
        self.repl_deposed += 1
        self.journal.emit("repl.depose", node=self.name, acg_id=acg_id)

    def _sync_followers(self, acg_id: int) -> None:
        """Catch-up: query each follower's watermark, bootstrap or stream.

        Called from ``set_followers`` (synchronously, so a quiesced
        cluster converges in one round) and from :meth:`tick` while any
        follower lags.  All failures are absorbed — catch-up is a
        background duty that must never take the node down with it.
        """
        state = self.repl.get(acg_id)
        if state is None or self.rpc is None:
            return
        for follower in state.followers:
            try:
                if state.acked.get(follower, -1) < 0:
                    self._install_follower(acg_id, state, follower)
                self._stream_one(acg_id, state, follower)
            except StaleReplEpoch:
                # A follower fenced us with a newer epoch: this node was
                # deposed as the partition's primary while silent.  Stop
                # replicating it entirely — retrying would just hammer
                # the fence.
                self._depose(acg_id)
                return
            except ClusterError:
                # Covers transients (NodeDown, RpcTimeout) and a follower
                # that lost its state mid-stream alike: retried next tick.
                continue
        self.repl_catchups += 1

    def _install_follower(self, acg_id: int, state: PrimaryReplState,
                          follower: str) -> None:
        """Bootstrap one follower with a snapshot of the partition.

        The forced commit makes the store reflect every acked update, so
        the snapshot is exactly consistent with ``log.last_seq``.
        """
        self.cache.commit_for_search(acg_id)
        replica = self.replica(acg_id)
        files = [
            (f, dict(replica.store.attrs(f)), replica.store.attrs(f).get("path"))
            for f in sorted(replica.store.file_ids())
        ]
        for entry in files:
            entry[1].pop("path", None)
        seq = self.rpc.call(
            follower, "install_follower", acg_id, self.name,
            state.repl_epoch, state.log.last_seq,
            list(replica.specs.values()), files)
        state.acked[follower] = seq

    def _stream_one(self, acg_id: int, state: PrimaryReplState,
                    follower: str) -> None:
        acked = state.acked.get(follower, -1)
        if acked < 0 or acked >= state.log.last_seq:
            return
        records = state.log.since(acked)
        if records is None:
            state.acked[follower] = -1
            self._install_follower(acg_id, state, follower)
            return
        applied = self.rpc.call(follower, "replicate_apply", acg_id,
                                state.repl_epoch, records)
        state.acked[follower] = applied
        self.repl_streamed += len(records)

    # -- replication (RF > 1): follower half -------------------------------------------------

    def handle_install_follower(self, acg_id: int, primary: str,
                                repl_epoch: int, seq: int,
                                specs: Sequence[IndexSpec],
                                files: Sequence[Tuple[int, Dict[str, Any], Optional[str]]]
                                ) -> int:
        """Bootstrap (or replace) this node's follower replica of an ACG.

        Idempotent: re-installation simply rebuilds the follower from the
        fresh snapshot.  Returns the applied sequence (= ``seq``).

        Epoch-fenced like :meth:`handle_replicate_apply`: a deposed
        primary (failed over while silent) must not overwrite a
        current-epoch replica with a stale snapshot — that would rewind
        the fence itself and let the new primary's next stream apply a
        suffix over a divergent base.  Rejected when the snapshot's
        epoch is below this node's follower state, or at-or-below an
        epoch at which this node itself primaries the partition.
        """
        existing = self.followers.get(acg_id)
        if existing is not None and repl_epoch < existing.repl_epoch:
            self.journal.emit("repl.fence", node=self.name, acg_id=acg_id,
                              repl_epoch=existing.repl_epoch,
                              stale_epoch=repl_epoch, rpc="install_follower",
                              primary=primary)
            raise StaleReplEpoch(
                f"{self.name}: stale install epoch {repl_epoch} < "
                f"{existing.repl_epoch} for ACG {acg_id}")
        mine = self.repl.get(acg_id)
        if mine is not None:
            if repl_epoch <= mine.repl_epoch:
                self.journal.emit("repl.fence", node=self.name, acg_id=acg_id,
                                  repl_epoch=mine.repl_epoch,
                                  stale_epoch=repl_epoch,
                                  rpc="install_follower",
                                  primary=primary, reason="own_primary_claim")
                raise StaleReplEpoch(
                    f"{self.name}: primaries ACG {acg_id} at epoch "
                    f"{mine.repl_epoch}, rejecting follower install at "
                    f"{repl_epoch}")
            # A newer primary exists: this node's primary claim is stale.
            self.repl.pop(acg_id, None)
        self._next_incarnation += 1
        replica = AcgReplica(acg_id, self.machine,
                             incarnation=self._next_incarnation)
        for spec in specs:
            replica.ensure_index(spec)
        for spec in self._global_specs.values():
            replica.ensure_index(spec)
        if self.group_commit:
            replica.apply_batch([
                IndexUpdate.upsert(file_id, dict(attrs), path=path)
                for file_id, attrs, path in files])
        else:
            for file_id, attrs, path in files:
                replica.apply(IndexUpdate.upsert(file_id, dict(attrs), path=path))
        self.followers[acg_id] = FollowerState(
            primary=primary, repl_epoch=repl_epoch, replica=replica,
            applied_seq=seq)
        return seq

    def handle_replicate_apply(self, acg_id: int, repl_epoch: int,
                               records: Sequence[Tuple[int, IndexUpdate]]) -> int:
        """Apply a log suffix to the follower replica; returns applied seq.

        Idempotent by sequence contiguity: records at or below the
        applied watermark are skipped (duplicate delivery, primary
        re-sends after a lost ack), a gap stops the apply so the primary
        re-streams from the returned watermark.  A lower ``repl_epoch``
        than the follower knows is a deposed primary and is rejected.
        """
        st = self.followers.get(acg_id)
        if st is None:
            raise UnknownAcg(f"{self.name} has no follower replica of ACG {acg_id}")
        if repl_epoch < st.repl_epoch:
            self.journal.emit("repl.fence", node=self.name, acg_id=acg_id,
                              repl_epoch=st.repl_epoch,
                              stale_epoch=repl_epoch, rpc="replicate_apply")
            raise StaleReplEpoch(
                f"{self.name}: stale repl epoch {repl_epoch} < {st.repl_epoch} "
                f"for ACG {acg_id}")
        st.repl_epoch = repl_epoch
        for seq, payload in records:
            if seq <= st.applied_seq:
                continue
            if seq != st.applied_seq + 1:
                break
            # A group-commit primary logs one record per batch (a tuple
            # of updates); the legacy path logs single updates.  Either
            # way the record applies atomically before the watermark
            # advances, so hedged reads never see half an envelope.
            if isinstance(payload, IndexUpdate):
                st.replica.apply(payload)
            else:
                st.replica.apply_batch(list(payload))
            st.applied_seq = seq
            st.last_apply_t = self.machine.clock.now()
        return st.applied_seq

    def handle_replica_watermark(self, acg_id: int) -> Tuple[int, int]:
        """(repl_epoch, applied_seq) of this node's follower replica."""
        st = self.followers.get(acg_id)
        if st is None:
            raise UnknownAcg(f"{self.name} has no follower replica of ACG {acg_id}")
        return (st.repl_epoch, st.applied_seq)

    def handle_promote_replica(self, acg_id: int, repl_epoch: int) -> Tuple[int, int]:
        """Failover promotion: the follower replica becomes the owned one.

        An epoch bump and a dictionary move — no WAL replay, no
        checkpoint read, which is why promotion time stays flat as the
        data volume grows.  The promoted replica gets a fresh incarnation
        (a new watermark identity, preserving the summary/result-cache
        soundness argument) and this node becomes the partition's primary
        at ``repl_epoch``, continuing the sequence from its applied
        watermark.  Returns (applied_seq, file_count).
        """
        st = self.followers.pop(acg_id, None)
        if st is None:
            raise UnknownAcg(f"{self.name} has no follower replica of ACG {acg_id}")
        self._next_incarnation += 1
        st.replica.incarnation = self._next_incarnation
        for spec in self._global_specs.values():
            if spec.name not in st.replica.specs:
                self._backfill_index(st.replica, spec)
        self.replicas[acg_id] = st.replica
        self.migrated_away.discard(acg_id)
        self._purge_result_cache(acg_id)
        self.repl[acg_id] = PrimaryReplState(
            repl_epoch=repl_epoch, log=ReplicationLog(base=st.applied_seq))
        return (st.applied_seq, st.replica.file_count)

    def handle_drop_follower(self, acg_id: int) -> None:
        """Forget this node's follower replica of an ACG."""
        self.followers.pop(acg_id, None)

    def handle_reset_follower_ack(self, acg_id: int, follower: str) -> None:
        """Void one follower's acked watermark (Master-directed).

        Sent when the Master notices a follower stopped reporting its
        replica (crash-restart lost it): the stale watermark here would
        otherwise keep this primary from ever re-streaming.  The next
        tick's catch-up pass re-installs the follower from snapshot."""
        state = self.repl.get(acg_id)
        if state is not None and follower in state.acked:
            state.acked[follower] = -1

    def handle_search_replica(self, acg_ids: Sequence[int], predicate: Predicate,
                              index_names: Optional[Sequence[str]] = None,
                              min_seqs: Optional[Dict[int, int]] = None
                              ) -> ReplicaSearchReply:
        """Serve a hedged search leg from follower replicas.

        Followers apply streamed updates immediately, so no cache commit
        is needed; ``min_seqs`` carries the client's read-your-writes
        watermark per ACG — an ACG whose applied sequence sits below it
        is still answered but flagged ``lagging`` (usable only under the
        client's opt-in partial-results deadline).  ACGs with no follower
        replica here come back in ``missing``.
        """
        reply = ReplicaSearchReply(node=self.name, epoch=self.route_epoch_seen)
        applied: List[Tuple[int, int]] = []
        lagging: List[int] = []
        missing: List[int] = []
        for acg_id in sorted(acg_ids):
            st = self.followers.get(acg_id)
            if st is None:
                missing.append(acg_id)
                continue
            reply.results.append(
                self._search_follower(st, predicate, index_names))
            applied.append((acg_id, st.applied_seq))
            if min_seqs and st.applied_seq < min_seqs.get(acg_id, 0):
                lagging.append(acg_id)
        reply.applied = tuple(applied)
        reply.lagging = tuple(lagging)
        reply.missing = tuple(missing)
        return reply

    def _search_follower(self, st: FollowerState, predicate: Predicate,
                         index_names: Optional[Sequence[str]]) -> SearchResult:
        """One follower replica's answer — the :meth:`_search_one` core
        without commit forcing, result caching, or residency I/O (the
        follower store is memory-resident by construction)."""
        now = self.machine.clock.now()
        replica = st.replica
        specs = [replica.specs[n] for n in (index_names or replica.specs)
                 if n in replica.specs]
        plans = plan_query_set(predicate, specs, now)
        self.machine.compute(_EXAMINE_OPS * max(1, replica.file_count // 64))
        file_ids = execute_plans(plans, predicate, replica.indexes,
                                 replica.store, now,
                                 use_postings=self.vectorized_postings)
        self.machine.compute(
            _EXAMINE_OPS * self._materialize_units(len(file_ids)))
        paths = tuple(sorted(
            p for p in (replica.store.attrs(f).get("path") for f in file_ids)
            if p is not None))
        return SearchResult(node=self.name, acg_id=replica.acg_id,
                            file_ids=frozenset(file_ids), paths=paths)

    # -- liveness -----------------------------------------------------------------------------

    def make_heartbeat(self) -> Heartbeat:
        """Build the liveness/status report sent to the Master.

        Per-ACG sizes count committed files plus distinct files still
        parked in the index cache — the Master's split trigger must see
        client-placed files before the commit timeout fires."""
        pending: Dict[int, Set[int]] = {}
        for acg_id in self.cache.pending_acgs():
            ids = pending.setdefault(acg_id, set())
            for update in self.cache.pending_ops(acg_id):
                if update.op is UpdateOp.UPSERT:
                    ids.add(update.file_id)
        sizes = {}
        summaries: List[SummarySnapshot] = []
        for acg_id, replica in self.replicas.items():
            extra = sum(1 for fid in pending.get(acg_id, ())
                        if fid not in replica.store)
            sizes[acg_id] = replica.file_count + extra
            if acg_id in self.handoff_intents:
                # Handed off: the migration target's summary is the one
                # that will validate after the flip — don't advertise a
                # watermark no future search can match.
                continue
            summaries.append(replica.summary.snapshot(
                acg_id=acg_id,
                watermark=self.watermark(acg_id),
                # Any uncommitted update (upsert *or* delete) marks the
                # snapshot dirty: clients must not prune on it.
                dirty=bool(self.cache.pending_ops(acg_id)),
                file_count=replica.file_count,
            ))
        replication: List[Any] = []
        for acg_id in sorted(self.repl):
            state = self.repl[acg_id]
            replication.append((
                "p", acg_id, state.repl_epoch, state.log.last_seq,
                tuple(sorted((f, seq) for f, seq in state.acked.items()
                             if seq >= 0))))
        for acg_id in sorted(self.followers):
            follower = self.followers[acg_id]
            replication.append(
                ("f", acg_id, follower.repl_epoch, follower.applied_seq))
        return Heartbeat(
            node=self.name,
            timestamp=self.machine.clock.now(),
            acg_sizes=tuple(sorted(sizes.items())),
            free_bytes=self.machine.spec.ram_bytes,
            summaries=tuple(sorted(summaries, key=lambda s: s.acg_id)),
            replication=tuple(replication),
            frozen_acgs=tuple(sorted(self.frozen)),
        )

    # -- shared-storage persistence ----------------------------------------------------------

    def checkpoint_to_shared(self) -> int:
        """Write every hosted ACG's checkpoint to the shared file system.

        Returns how many ACGs were persisted; a no-op when no shared
        storage is attached (unit-test configurations).
        """
        if self.shared_vfs is None:
            return 0
        self.cache.commit_all()
        count = 0
        for replica in self.replicas.values():
            if replica.acg_id in self.handoff_intents:
                # Handed off: the target owns durability now, and this
                # node's checkpoint is already scheduled for removal.
                continue
            # The serialized write costs one sequential transfer on the
            # shared-storage device (not the local index disk); frozen
            # partitions checkpoint in segment format.
            self._checkpoint_one(replica)
            count += 1
        # Failover restores this snapshot: anything acknowledged after
        # this instant lives only in the local WAL and dies with the node.
        self.last_checkpoint_t = self.machine.clock.now()
        return count

    def handle_adopt_acg(self, checkpoint_path: str) -> int:
        """Failover: install an ACG from another node's shared checkpoint.

        Returns the number of files adopted.
        """
        if self.shared_vfs is None:
            raise ClusterError(f"{self.name} has no shared storage attached")
        from repro.cluster.persistence import read_checkpoint

        payload = read_checkpoint(self.shared_vfs, checkpoint_path)
        acg_id = payload["acg_id"]
        self._clear_stale_handoff(acg_id)
        for spec in payload["specs"]:
            if spec.name not in self._global_specs:
                self._global_specs[spec.name] = spec
        replica = self.replica(acg_id, create=True)
        for spec in payload["specs"]:
            replica.ensure_index(spec)
        replica.graph.merge(AccessCausalityGraph.from_records(payload["acg_records"]))
        for file_id, attrs, path in payload["files"]:
            replica.apply(IndexUpdate.upsert(file_id, attrs, path=path))
        # Loading the checkpoint is one sequential read from shared storage.
        self._shared_device.reset_head()
        self._shared_device.read((acg_id % 4096) << 24, replica.resident_bytes())
        # Adopted content bypassed the replication log: force followers
        # back through a snapshot bootstrap.
        self._reset_repl(acg_id)
        return len(payload["files"])

    # -- crash recovery ----------------------------------------------------------------------

    def recover_from_wal(self) -> int:
        """Rebuild the pending cache from the WAL after a simulated crash.

        Replayed updates go straight through commit (they were already
        acknowledged); returns how many records were recovered.  Records
        the log had to drop at a torn or corrupt tail accumulate into
        :attr:`wal_replay_dropped_total` (the ``wal.replay_dropped`` node
        metric) so every unrecoverable acknowledgement is accounted for.
        """
        recovered = 0
        # Snapshot the pre-crash watermarks: replay's own commits bump
        # the live counts, which must not shift the skip decision for
        # records later in the same log.
        committed_before = dict(self._wal_commit_counts)
        seen: Dict[int, int] = {}
        batch_tag = WriteAheadLog.BATCH_TAG
        # Skip accounting is in *updates*, not records: a skipped batch
        # record hides its whole envelope, and the metric feeds the
        # "every acknowledgement is accounted for" audit.
        skipped_updates = 0

        def keep(record) -> bool:
            # Skip records for ACGs this node migrated away (dropped) or
            # still holds behind a handoff intent — replaying those would
            # resurrect handed-off data on the old owner.  Also skip each
            # ACG's already-committed prefix: those effects are durable
            # in the store, and re-applying them over a torn tail could
            # resurrect a committed-then-torn delete.  The skips are
            # counted, not silent.  Watermarks count *updates*, so a
            # batch record advances ``seen`` by its batch length; a batch
            # straddling the watermark is kept and sliced in the loop.
            nonlocal skipped_updates
            if record[0] == batch_tag:
                acg_id, length = record[1], len(record[2])
            else:
                acg_id, length = record[0], 1
            if acg_id in self.migrated_away or acg_id in self.handoff_intents:
                skipped_updates += length
                return False
            seen[acg_id] = seen.get(acg_id, 0) + length
            if seen[acg_id] <= committed_before.get(acg_id, 0):
                skipped_updates += length
                return False
            return True

        for record in self.wal.replay(keep):
            if record[0] == batch_tag:
                acg_id, raw = record[1], record[2]
            else:
                acg_id, raw = record[0], (record,)
            # ``seen`` is exact through this record (replay is lazy), so
            # the committed prefix of a straddling batch is the first
            # ``already`` updates — replaying those would not be
            # idempotent against a torn tail.
            already = max(0, committed_before.get(acg_id, 0)
                          - (seen[acg_id] - len(raw)))
            skipped_updates += already
            updates = [IndexUpdate(file_id=r[1], op=UpdateOp(r[2]),
                                   attrs=tuple(r[4]), path=r[3])
                       for r in raw[already:]]
            if not updates:
                continue
            self._commit_updates(acg_id, updates)
            recovered += len(updates)
        self.wal_replay_dropped_total += self.wal.replay_dropped
        self.wal_replay_skipped_total += skipped_updates
        self._truncate_wal()
        return recovered

    # -- crash / restart / rejoin lifecycle ----------------------------------------------------

    def crash(self, torn_tail_bytes: int = 0) -> List[int]:
        """Process crash: all in-memory state dies, durable state stays.

        The pending cache (acknowledged-but-uncommitted updates) and the
        residency map are lost; the committed replicas (disk-backed) and
        the WAL survive, minus ``torn_tail_bytes`` chopped off the log's
        end — the bytes in flight when power died.  Marks the endpoint
        down.  Returns the file ids whose updates were pending (and are
        therefore recoverable only from the WAL) for crash-consistency
        accounting.
        """
        pending = sorted({u.file_id
                          for acg in self.cache.pending_acgs()
                          for u in self.cache.pending_ops(acg)})
        self.cache._pending.clear()
        self.cache._oldest.clear()
        self._result_cache.clear()
        # Replication state is volatile on both halves: the primary's log
        # and ack map die with the process (followers are re-installed on
        # restart's catch-up), and hosted follower replicas are gone — a
        # promotion can only use a *live* follower's copy.
        self.repl.clear()
        self.followers.clear()
        # Tier state is volatile too: the frozen map and its summary
        # sidecars die with the process (segments on the cold tier are
        # orphan-tolerant — a re-freeze overwrites the same key).
        self.frozen.clear()
        self._acg_last_access.clear()
        self.drop_resident()
        if torn_tail_bytes > 0:
            self.wal.simulate_torn_tail(torn_tail_bytes)
        self.endpoint.fail()
        self.journal.emit("node.crash", node=self.name,
                          pending_files=len(pending),
                          torn_tail_bytes=torn_tail_bytes)
        return pending

    def restart(self) -> int:
        """Bring a crashed process back on the same durable state.

        Replays the WAL (rebuilding everything acknowledged before the
        crash that survived the torn tail) and marks the endpoint up.
        Returns the number of records recovered.
        """
        recovered = self.recover_from_wal()
        self.endpoint.recover()
        self.journal.emit("node.restart", node=self.name,
                          recovered_records=recovered)
        return recovered

    def reset(self) -> None:
        """Wipe the node for a rejoin after failover moved its data away.

        A node that comes back *after* the Master failed its partitions
        over must not serve (or count) its stale replicas — the live
        copies belong to the adopters now.  The node rejoins empty and
        receives partitions again through routing and rebalancing.
        """
        self.replicas.clear()
        self.cache._pending.clear()
        self.cache._oldest.clear()
        self._result_cache.clear()
        self._truncate_wal()
        self.handoff_intents.clear()
        self.migrated_away.clear()
        self.repl.clear()
        self.followers.clear()
        self.frozen.clear()
        self._acg_last_access.clear()
        self.drop_resident()
