"""Write-ahead log.

Every file-indexing request an Index Node acknowledges is first appended
here (Section IV), so a crash between acknowledgement and index commit
loses nothing: replay reconstructs the pending updates.  Records are
CRC-framed; a torn tail (partial final record after a crash) is detected
and dropped, anything worse raises :class:`~repro.errors.WalCorruption`.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import WalCorruption
from repro.indexstructures.serialization import dump_value, load_value
from repro.sim.disk import DiskDevice

_HEADER = struct.Struct("<II")  # length, crc32


class WriteAheadLog:
    """Append-only CRC-framed log, optionally charging a simulated disk."""

    def __init__(self, disk: Optional[DiskDevice] = None) -> None:
        self._buffer = bytearray()
        self._disk = disk
        self.records_appended = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def append(self, record: Tuple[Any, ...]) -> None:
        """Durably append one record (a tuple of primitive values)."""
        body = dump_value(record)
        frame = _HEADER.pack(len(body), zlib.crc32(body)) + body
        self._buffer.extend(frame)
        self.records_appended += 1
        if self._disk is not None:
            self._disk.append(len(frame))

    def replay(self) -> Iterator[Tuple[Any, ...]]:
        """Yield every intact record in append order.

        A cleanly-torn tail ends iteration silently; a corrupted record
        body raises :class:`WalCorruption`.
        """
        data = bytes(self._buffer)
        offset = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                return  # torn header at tail
            length, crc = _HEADER.unpack_from(data, offset)
            body_start = offset + _HEADER.size
            body_end = body_start + length
            if body_end > len(data):
                return  # torn body at tail
            body = data[body_start:body_end]
            if zlib.crc32(body) != crc:
                raise WalCorruption(f"bad CRC at offset {offset}")
            value, consumed = load_value(body, 0)
            if consumed != length:
                raise WalCorruption(f"bad record length at offset {offset}")
            yield value
            offset = body_end

    def truncate(self) -> None:
        """Discard the log after a successful checkpoint/commit."""
        self._buffer.clear()

    def simulate_torn_tail(self, drop_bytes: int) -> None:
        """Chop bytes off the end (crash injection for tests)."""
        if drop_bytes > 0:
            del self._buffer[-drop_bytes:]

    def corrupt_byte(self, offset: int) -> None:
        """Flip one byte (corruption injection for tests)."""
        self._buffer[offset] ^= 0xFF
