"""Write-ahead log.

Every file-indexing request an Index Node acknowledges is first appended
here (Section IV), so a crash between acknowledgement and index commit
loses nothing: replay reconstructs the pending updates.  Records are
CRC-framed; a torn or corrupt *tail* (partial or garbled final record
after a crash — the bytes that were mid-write when power died) is
detected, dropped, and **counted** (``replay_dropped`` /
``replay_dropped_bytes``, surfaced as the ``wal.replay_dropped`` node
metric) so recovery can account for every acknowledged record it could
not replay.  Corruption anywhere before the final record means the log
itself is damaged, not torn, and still raises
:class:`~repro.errors.WalCorruption`.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.errors import WalCorruption
from repro.indexstructures.serialization import dump_value, load_value
from repro.sim.disk import DiskDevice

_HEADER = struct.Struct("<II")  # length, crc32


class WriteAheadLog:
    """Append-only CRC-framed log, optionally charging a simulated disk."""

    #: First element of a group-commit record: distinguishes a batch
    #: frame ``(BATCH_TAG, acg_id, (update, ...))`` from the legacy
    #: one-update-per-frame records whose first element is an int.
    BATCH_TAG = "batch"

    def __init__(self, disk: Optional[DiskDevice] = None) -> None:
        self._buffer = bytearray()
        self._disk = disk
        self.records_appended = 0
        # Group-commit accounting: every frame written is one simulated
        # fsync (the legacy path pays one per record; append_batch pays
        # one per *batch*).  bytes_written / fsyncs gives the amortized
        # fsync payload surfaced as ``wal.bytes_per_fsync``.
        self.fsyncs = 0
        self.bytes_written = 0
        # What the most recent replay() had to drop at a torn or corrupt
        # tail (a replay over a healthy log resets both to zero).
        # Recovery paths accumulate these into longer-lived counters.
        self.replay_dropped = 0
        self.replay_dropped_bytes = 0
        # Intact records the most recent replay() deliberately skipped
        # via its ``keep`` predicate (e.g. records for partitions the
        # node handed off in a migration before the crash).
        self.replay_skipped = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def append(self, record: Tuple[Any, ...]) -> None:
        """Durably append one record (a tuple of primitive values)."""
        body = dump_value(record)
        frame = _HEADER.pack(len(body), zlib.crc32(body)) + body
        self._buffer.extend(frame)
        self.records_appended += 1
        self.fsyncs += 1
        self.bytes_written += len(frame)
        if self._disk is not None:
            self._disk.append(len(frame))

    def append_batch(self, acg_id: int, records: Tuple[Tuple[Any, ...], ...]) -> None:
        """Group-commit append: one frame, one simulated fsync, N records.

        The whole batch lives inside a single CRC frame, so the torn-tail
        rule in :meth:`replay` applies to the batch as a unit: a crash
        mid-write drops the entire torn batch record and nothing before
        it — exactly the atomicity group commit promises.  Replay yields
        the batch as ``(BATCH_TAG, acg_id, records)``; recovery expands
        it against the per-ACG commit watermark.
        """
        body = dump_value((self.BATCH_TAG, acg_id, tuple(records)))
        frame = _HEADER.pack(len(body), zlib.crc32(body)) + body
        self._buffer.extend(frame)
        self.records_appended += len(records)
        self.fsyncs += 1
        self.bytes_written += len(frame)
        if self._disk is not None:
            self._disk.append(len(frame))

    def replay(self, keep: Optional[Callable[[Tuple[Any, ...]], bool]] = None
               ) -> Iterator[Tuple[Any, ...]]:
        """Yield every intact record in append order.

        A torn tail (partial header or body) and a *final* record that
        fails its CRC — the record that was mid-write at the crash — end
        iteration and are counted in :attr:`replay_dropped` /
        :attr:`replay_dropped_bytes` instead of vanishing silently.
        Corruption that is not at the tail means the log is damaged, not
        torn, and raises :class:`WalCorruption`.

        ``keep`` (optional) filters intact records: records it rejects
        are counted in :attr:`replay_skipped` instead of being yielded.
        Recovery uses this to skip records for partitions the node no
        longer owns (a completed migration must not resurrect its data
        on the old owner).
        """
        self.replay_dropped = 0
        self.replay_dropped_bytes = 0
        self.replay_skipped = 0
        data = bytes(self._buffer)
        offset = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                self._drop_tail(len(data) - offset)
                return  # torn header at tail
            length, crc = _HEADER.unpack_from(data, offset)
            body_start = offset + _HEADER.size
            body_end = body_start + length
            if body_end > len(data):
                self._drop_tail(len(data) - offset)
                return  # torn body at tail
            body = data[body_start:body_end]
            if zlib.crc32(body) != crc:
                if body_end == len(data):
                    # The final record garbled in flight: a corrupt tail,
                    # recoverable by dropping it.
                    self._drop_tail(len(data) - offset)
                    return
                raise WalCorruption(f"bad CRC at offset {offset}")
            value, consumed = load_value(body, 0)
            if consumed != length:
                raise WalCorruption(f"bad record length at offset {offset}")
            if keep is not None and not keep(value):
                self.replay_skipped += 1
            else:
                yield value
            offset = body_end

    def _drop_tail(self, nbytes: int) -> None:
        self.replay_dropped += 1
        self.replay_dropped_bytes += nbytes

    def truncate(self) -> None:
        """Discard the log after a successful checkpoint/commit."""
        self._buffer.clear()

    def simulate_torn_tail(self, drop_bytes: int) -> None:
        """Chop bytes off the end (crash injection for tests)."""
        if drop_bytes > 0:
            del self._buffer[-drop_bytes:]

    def corrupt_byte(self, offset: int) -> None:
        """Flip one byte (corruption injection for tests)."""
        self._buffer[offset] ^= 0xFF
