"""Master Node.

The central index-metadata and coordination server (Section IV): it holds
the file→ACG mapping and ACG locations, routes client requests, assigns
new ACGs to the least-loaded Index Node, tracks heartbeats, periodically
checkpoints its metadata to shared storage, and coordinates background
splits and migrations.  It never serves file I/O or index contents itself,
which is why the paper argues one Master scales to hundreds of Index
Nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.messages import (Heartbeat, RouteEntry, RouteTable,
                                    RouteTableEntry, SummaryTable)
from repro.cluster.meta_wal import MetaState, MetaWal
from repro.core.partition_manager import PartitionManager
from repro.core.partitioner import PartitioningPolicy
from repro.errors import (ClusterError, FileSystemError, NotActingMaster,
                          StaleMasterTerm, UnknownIndexNode)
from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER
from repro.query.planner import IndexKind, IndexSpec
from repro.sim.machine import Machine
from repro.sim.rpc import RpcEndpoint, RpcNetwork

_ROUTE_LOOKUP_OPS = 1_500   # one hash probe into the file→ACG map
_SUMMARY_COPY_OPS = 300     # hand one summary snapshot to a client
_CHECKPOINT_BYTES_PER_FILE = 24
# How many (epoch, partition) changes the Master retains for the route
# delta protocol; clients further behind get a full snapshot instead.
_ROUTE_LOG_CAP = 512

# Standby lease protocol: the standby pings (and tails) the acting
# Master every tick; LEASE_MISSES_TO_PROMOTE consecutive failed pings
# expire the lease and promote.  Detection therefore lands within
# roughly tick * misses (plus RPC retry time) — comfortably inside the
# documented MASTER_LEASE_TIMEOUT_S bound benchmarks guard against.
STANDBY_TICK_S = 2.0
LEASE_MISSES_TO_PROMOTE = 3
MASTER_LEASE_TIMEOUT_S = 10.0


@dataclass
class SplitDecision:
    """Record of one coordinated split (kept for observability/tests)."""

    acg_id: int
    new_acg_id: int
    source_node: str
    target_node: str
    moved_files: int


@dataclass
class MigrationEvent:
    """Timeline record of one online migration.

    ``t_start`` is when the Master asked the source to start transferring
    out; ``t_flip`` is when routing flipped to the target (the epoch
    bump); ``outcome`` tracks the protocol's end state — ``done``,
    ``aborted`` (rolled back before the flip), or ``finish_deferred``
    (flipped, but the source could not be told to drop its copy yet; a
    later heartbeat round retries and flips this to ``done``).
    """

    acg_id: int
    source: str
    target: str
    t_start: float
    t_flip: float = 0.0
    epoch: int = 0
    moved_files: int = 0
    outcome: str = "pending"


@dataclass
class FailoverEvent:
    """Record of one failover: what moved, what was lost, and when.

    The chaos invariant checker uses these to tell *expected* data loss
    (updates acknowledged after the victim's last checkpoint die with it)
    apart from genuine bugs: a file is excused only if its partition
    appears here and its ack time postdates the victim's checkpoint.

    ``outcome`` distinguishes how the round ended: ``"adopted"`` (the
    historical checkpoint-replay path did the work), ``"promoted"``
    (replica promotion placed every partition that moved), or
    ``"deferred"`` — nothing could be placed this round because every
    candidate adopter/replica was unreachable or itself lagging, and the
    next heartbeat poll will retry.  ``promoted`` names the partitions
    that were promoted rather than adopted, ``watermarks`` records the
    chosen (or, for deferred rounds, best-known) replica's applied
    sequence per partition, and ``victim_heartbeat_t`` is when the dead
    node last heartbeated — the promotion excuse-window anchor.
    """

    t: float
    node: str
    moved: Tuple[int, ...]
    lost: Tuple[int, ...]
    auto: bool = False
    outcome: str = "adopted"
    promoted: Tuple[int, ...] = ()
    deferred: Tuple[int, ...] = ()
    watermarks: Tuple[Tuple[int, int], ...] = ()
    victim_heartbeat_t: float = 0.0


class MasterNode:
    """Propeller's metadata and coordination server."""

    def __init__(self, machine: Machine, rpc: RpcNetwork,
                 policy: PartitioningPolicy = PartitioningPolicy(),
                 registry: Optional[MetricsRegistry] = None,
                 auto_failover: bool = False,
                 heartbeat_timeout_s: float = 15.0,
                 replication_factor: int = 1,
                 journal: Optional[EventJournal] = None,
                 endpoint_name: str = "master",
                 peer: Optional[str] = None,
                 acting: bool = True) -> None:
        self.machine = machine
        self.rpc = rpc
        self.policy = policy
        # Master-term state: every master-originated mutating RPC carries
        # the term, Index Nodes fence anything below the newest term they
        # have seen, and the meta-WAL fences below its highest recorded
        # term — the two authorities that make promotion split-brain
        # safe.  A standby starts at term 0 / not acting and learns
        # everything (including the term) by tailing its peer's meta-log.
        self.acting = acting
        self.term = 1 if acting else 0
        self.term_owner = endpoint_name if acting else ""
        self.peer = peer
        self.meta_wal = MetaWal()
        # Standby tail state: the applied watermark into the peer's
        # meta-log (None → bootstrap from a snapshot image) and the
        # MetaState accumulated from streamed records, installed wholesale
        # on promotion.
        self._tail_seq: Optional[int] = None
        self._tail_state = MetaState()
        self._missed_leases = 0
        # Push-stream arming: the acting Master pushes each meta record
        # to its standby synchronously (meta_apply), but only once the
        # standby has bootstrapped via a master_lease pull — serving
        # that pull arms the stream, any push failure disarms it until
        # the next successful pull.  Starts disarmed: the peer endpoint
        # may not even exist yet at construction time.
        self._push_ok = False
        # Deployment hook: called with ``self`` right after a promotion
        # so the service can re-point routing/health at the new acting
        # Master.
        self._on_promote: Optional[Any] = None
        # A Master always has a *real* journal (never the null object):
        # the failover_log / migration_log properties are views over
        # journal payloads, so emission must retain events even on a
        # standalone Master.  Deployments pass the shared journal in.
        self.journal = journal if journal is not None \
            else EventJournal(machine.clock)
        # RF > 1 gives every partition follower replicas: heartbeats
        # carry watermark reports, failover tries promotion first, and
        # route tables advertise the followers for hedged reads.  RF=1
        # (the default) leaves every replication path dormant.
        self.replication_factor = replication_factor
        if replication_factor > 1:
            from repro.replication import ReplicaSetManager

            self.replica_sets: Optional[Any] = ReplicaSetManager(replication_factor)
            self.replica_sets.journal = self.journal
        else:
            self.replica_sets = None
        # Partitions whose follower assignment needs (re)driving: primary
        # unreachable at assignment time, primary restarted and lost its
        # replication state, or membership changed.  Retried every
        # heartbeat round, mirroring the migration-debris pattern.  The
        # value is a *force* flag: True when the retry must bump the
        # replication epoch because the primary's log generation
        # restarted (crash-restart detected), False when re-delivering
        # an already-fenced assignment.
        self._pending_follower_syncs: Dict[int, bool] = {}
        # When on, the heartbeat poll itself fails silent nodes over —
        # off by default so explicit-failover deployments keep control.
        self.auto_failover = auto_failover
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.partitions = PartitionManager()
        # Coordination events (failovers, splits, checkpoints) count into
        # the deployment-wide registry; a standalone Master gets its own.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = NULL_TRACER
        from repro.sim.disk import DiskDevice

        self._shared_device = DiskDevice(machine.clock, machine.disk.model)
        self.index_nodes: List[str] = []
        self.index_specs: Dict[str, IndexSpec] = {}
        self.heartbeats: Dict[str, Heartbeat] = {}
        self.splits: List[SplitDecision] = []
        # Routing-epoch change log: (epoch, acg_id) per bump, so clients
        # at epoch E can be answered with just the partitions that moved
        # since E instead of a full snapshot.
        self._route_log: List[Tuple[int, int]] = []
        # Latest per-ACG file counts as reported by Index Node heartbeats.
        # Clients place files without telling the Master (that is the
        # whole point of the route cache), so the Master's own file map
        # under-counts; every load/size decision uses the max of both.
        self._reported_sizes: Dict[int, int] = {}
        # Migration debris: protocol steps that failed mid-flight and are
        # retried on later heartbeat rounds (see migrate_partition).
        self._pending_finishes: Dict[Tuple[str, int], MigrationEvent] = {}
        self._pending_cancels: Set[Tuple[str, int]] = set()
        # Partition-summary cache, fed by heartbeat piggybacks: acg_id →
        # latest SummarySnapshot from the partition's current owner.
        # ``_summary_version`` bumps whenever any stored snapshot changes
        # so clients can poll cheaply (fresh marker, no payload).
        self._summaries: Dict[int, Any] = {}
        self._summary_version = 0
        # Tier residency, fed by heartbeat piggybacks: node → the ACG ids
        # it currently keeps frozen on the cold tier.
        self._tier_residency: Dict[str, Tuple[int, ...]] = {}
        self.checkpoints_written = 0
        self.endpoint = RpcEndpoint(endpoint_name)
        for method, handler in [
            ("register_index_node", self.register_index_node),
            ("create_index", self.create_index),
            ("route_updates", self.route_updates),
            ("route_search", self.route_search),
            ("route_table", self.route_table),
            ("allocate_partitions", self.allocate_partitions),
            ("file_created", self.file_created),
            ("file_deleted", self.file_deleted),
            ("lookup_file", self.lookup_file),
            ("report_heartbeat", self.report_heartbeat),
            ("summary_table", self.summary_table),
            ("master_lease", self.master_lease),
            ("meta_apply", self.meta_apply),
        ]:
            self.endpoint.register(method, handler)
        rpc.add_endpoint(self.endpoint)
        if acting:
            # The term record is always the first durable fact about a
            # log generation: replay learns who owns the term before any
            # mutation at that term applies.
            self._meta("term", self.term, endpoint_name)

    # -- event-journal views ------------------------------------------------------
    #
    # The ad-hoc event lists from PRs 3–6 survive as *views* over the
    # unified journal: appends became journal emissions carrying the
    # record object as payload, so consumers (chaos invariant checker,
    # tests) read the same list-of-records shape as before, while the
    # journal is the single source of truth.

    @property
    def failover_log(self) -> List[FailoverEvent]:
        """Every failover round's record, oldest first (journal view)."""
        return self.journal.payloads("failover")

    @property
    def migration_log(self) -> List[MigrationEvent]:
        """Every migration's record, oldest first (journal view; records
        mutate in place as the protocol progresses, exactly as the old
        list's entries did)."""
        return self.journal.payloads("migration.start")

    # -- master term, meta-WAL, lease, and standby ---------------------------------
    #
    # The control plane's crash-tolerance machinery.  Every durable
    # mutation appends a term-prefixed record to the meta-WAL before (or
    # atomically with) taking effect; every master-originated mutating
    # RPC is stamped with the term so Index Nodes can fence a deposed
    # Master; and a warm standby tails the log via the master_lease RPC,
    # promoting with a term bump when the lease expires.

    def _meta(self, *record: Any) -> None:
        """Append one durable mutation record at the current term, then
        stream it to the warm standby (best effort — the periodic
        master_lease pull reconciles anything the push misses)."""
        self.meta_wal.append(self.term, record)
        if self.acting and self.peer is not None and self._push_ok:
            self._push_meta(record)

    def _push_meta(self, record: Tuple[Any, ...]) -> None:
        """Synchronously push one apply record to the standby.

        This is what keeps the standby *exactly* current between its 2s
        pull ticks: in-between a crash can only lose mutations the
        acting Master never acked, so a promotion installs the full
        tailed state and routing epochs continue monotonically.  The
        push is also a fencing channel — a standby that promoted while
        we were partitioned away answers :class:`StaleMasterTerm`, and
        we self-depose on the spot instead of waiting to be fenced by
        an Index Node.  Delivery failures just disarm the stream; the
        standby's next successful pull re-arms it."""
        from repro.errors import NodeDown, RpcTimeout

        try:
            self.rpc.call(self.peer, "meta_apply", self.meta_wal.seq,
                          (self.term,) + tuple(record))
        except StaleMasterTerm as exc:
            self._deposed(exc.term, "meta_apply")
        except (NodeDown, RpcTimeout):
            self._push_ok = False

    def meta_apply(self, seq: int, entry: Tuple[Any, ...]) -> None:
        """Standby-side receiver for one streamed apply record.

        ``entry`` is a term-prefixed meta-WAL record; ``seq`` its
        sequence number in the pusher's log.  Exactly-once is enforced
        by the watermark: only ``_tail_seq + 1`` applies — duplicates
        and gaps are ignored (the periodic pull reconciles).  Fencing
        runs both ways: a push below our known term is rejected with
        :class:`StaleMasterTerm` (the pusher was deposed while
        partitioned), and a push *above* the term of a receiver that
        believes it is acting deposes the receiver — it missed its own
        deposal while down."""
        term = entry[0]
        known = max(self.term, self.meta_wal.highest_term)
        if self.acting and term > known:
            self._deposed(term, "meta_apply")
            return
        if term < known or self.acting:
            raise StaleMasterTerm(
                f"{self.endpoint.name} has already seen term {known}",
                term=known)
        if self._tail_seq is None or seq != self._tail_seq + 1:
            return
        self.meta_wal.append(term, tuple(entry[1:]))
        self._tail_state.apply(tuple(entry))
        self._tail_seq = seq

    def _require_acting(self) -> None:
        """Guard for client-facing handlers: only the acting Master may
        answer (a standby's state lags; serving it would be wrong *and*
        hide the outage from re-homing clients)."""
        if not self.acting:
            raise NotActingMaster(
                f"{self.endpoint.name} is not the acting master",
                acting=self.peer or "")

    def _node_call(self, node: str, method: str, *args: Any,
                   **kwargs: Any) -> Any:
        """Outbound Index Node RPC, stamped with the master term.

        An Index Node that has seen a newer term answers with
        :class:`StaleMasterTerm`: this Master was deposed while
        partitioned.  The reaction is to stop acting — immediately and
        permanently for this term — then re-raise so the interrupted
        operation unwinds like any other cluster error."""
        kwargs.setdefault("term", self.term)
        try:
            return self.rpc.call(node, method, *args, **kwargs)
        except StaleMasterTerm as exc:
            self._deposed(exc.term, method)
            raise

    def _deposed(self, newer_term: int, rpc_name: str) -> None:
        """Self-fence after an Index Node rejected our term."""
        if not self.acting:
            return
        self.acting = False
        self._missed_leases = 0
        self._tail_seq = None
        self._tail_state = MetaState()
        self.registry.counter("cluster.master.deposed").inc()
        self.journal.emit("master.depose", node=self.endpoint.name,
                          term=self.term, newer_term=newer_term,
                          rpc=rpc_name)

    def _build_meta_state(self) -> MetaState:
        """The acting Master's live durable state as a MetaState (the
        checkpoint image and the standby-bootstrap payload)."""
        state = MetaState()
        state.term = self.term
        state.term_owner = self.term_owner
        state.epoch = self.partitions.epoch
        state.members = list(self.index_nodes)
        state.specs = {name: (name, spec.kind.value, tuple(spec.attrs))
                       for name, spec in self.index_specs.items()}
        for p in self.partitions.partitions():
            state.partitions[p.partition_id] = [p.node, set(p.files)]
            for file_id in p.files:
                state.file_map[file_id] = p.partition_id
        state.next_partition_id = self.partitions.next_id
        if self.replica_sets is not None:
            for acg_id in self.replica_sets.partitions():
                st = self.replica_sets.get(acg_id)
                state.repl[acg_id] = (st.repl_epoch, tuple(st.followers))
        state.syncs = dict(self._pending_follower_syncs)
        state.finishes = {(src, acg): (ev.target, ev.moved_files)
                          for (src, acg), ev in self._pending_finishes.items()}
        state.cancels = set(self._pending_cancels)
        return state

    def _install_state(self, state: MetaState) -> None:
        """Replace every durable structure with a replayed MetaState.

        Epochs, terms, and the partition-id counter continue exactly
        where the log left them — never reset — so cached client routes
        stay valid and fences stay sound.  Soft state (heartbeats,
        reported sizes, summaries, the route-delta log) died with the
        process and is re-learned from the next heartbeat round; clients
        behind the empty route-delta log get one full route table."""
        self.term = state.term
        self.term_owner = state.term_owner
        records = [(pid, entry[0], tuple(sorted(entry[1])))
                   for pid, entry in state.partitions.items()]
        self.partitions = PartitionManager.from_records(
            records, epoch=state.epoch, next_id=state.next_partition_id)
        self.index_nodes = list(state.members)
        self.index_specs = {
            name: IndexSpec(name=name, kind=IndexKind(kind),
                            attrs=tuple(attrs))
            for name, kind, attrs in state.specs.values()}
        if self.replica_sets is not None:
            from repro.replication import ReplicaSetManager

            manager = ReplicaSetManager(self.replication_factor)
            manager.journal = self.journal
            for acg_id, (repl_epoch, followers) in state.repl.items():
                manager.restore(acg_id, repl_epoch, followers)
            self.replica_sets = manager
        self._pending_follower_syncs = dict(state.syncs)
        self._pending_finishes = {
            (src, acg): MigrationEvent(acg_id=acg, source=src, target=tgt,
                                       t_start=0.0, moved_files=moved,
                                       outcome="finish_deferred")
            for (src, acg), (tgt, moved) in state.finishes.items()}
        self._pending_cancels = set(state.cancels)
        self.heartbeats = {}
        self._reported_sizes = {}
        self._summaries = {}
        self._summary_version = 0
        self._tier_residency = {}
        self._route_log = []

    def crash_restart(self) -> None:
        """Restart this Master in place after a process crash.

        All in-memory state dies; :meth:`MetaWal.recover` replays the
        snapshot image plus every surviving log record (a torn tail —
        the record mid-write at the crash — is dropped and counted, the
        same discipline as Index Node WAL recovery).  The replayed term
        record decides the role: if this Master still owns the latest
        recorded term, no promotion happened while it was down and it
        resumes acting; otherwise it must rejoin as a standby (the
        deployment re-points its peer)."""
        state = self.meta_wal.recover()
        self._install_state(state)
        self.acting = (state.term_owner == self.endpoint.name)
        self._missed_leases = 0
        self._tail_seq = None
        self._tail_state = MetaState()
        self._push_ok = False
        self.registry.counter("cluster.master.restarts").inc()
        self.journal.emit("master.restart", node=self.endpoint.name,
                          term=self.term, acting=self.acting,
                          route_epoch=self.partitions.epoch,
                          replay_dropped=self.meta_wal.log.replay_dropped)

    def master_lease(self, since_seq: Optional[int] = None) -> Tuple[Any, ...]:
        """The standby's combined lease ping and meta-log tail.

        Returns ``(term, seq, payload)`` where payload is
        ``("records", entries)`` — the decoded apply records past the
        caller's watermark — or ``("snapshot", image)`` when the caller
        is bootstrapping (or a checkpoint truncated past its watermark).
        Only the acting Master holds a lease to extend.  Serving a pull
        also (re)arms the push stream: once this response lands, the
        standby's watermark equals ``seq``, so every subsequent record
        chains onto it."""
        self._require_acting()
        self._push_ok = True
        if since_seq is not None:
            entries = self.meta_wal.entries_since(since_seq)
            if entries is not None:
                return (self.term, self.meta_wal.seq,
                        ("records", tuple(entries)))
        return (self.term, self.meta_wal.seq,
                ("snapshot", self._build_meta_state().snapshot()))

    def standby_tick(self) -> None:
        """One standby heartbeat: extend the lease and tail the log.

        ``LEASE_MISSES_TO_PROMOTE`` consecutive failures (peer down,
        timed out, or no longer acting) expire the lease and promote.
        A tick against a *stale* peer — one whose records carry a term
        below what this log has seen — counts as a miss too: the meta-WAL
        fence refuses the records."""
        if self.acting or self.peer is None:
            return
        from repro.errors import NodeDown, RpcTimeout

        try:
            term, seq, payload = self.rpc.call(self.peer, "master_lease",
                                               self._tail_seq)
            kind, body = payload
            if kind == "snapshot":
                self.meta_wal.install(body, seq, term)
                self._tail_state = MetaState.from_snapshot(body)
            else:
                for record in body:
                    self.meta_wal.append(record[0], record[1:])
                    self._tail_state.apply(record)
        except (NodeDown, RpcTimeout, NotActingMaster, StaleMasterTerm):
            self._missed_leases += 1
            if self._missed_leases >= LEASE_MISSES_TO_PROMOTE:
                self.promote()
            return
        self._missed_leases = 0
        self._tail_seq = seq

    def promote(self) -> None:
        """Take over as acting Master with a term bump.

        Installs the tailed MetaState (epochs continue monotonically —
        the promotion is invisible to cached client routes), bumps the
        term past everything ever seen, and appends the new term record
        *first* so the bump is durable before any mutation at the new
        term.  Index Nodes learn the term from the next term-stamped
        poll; the deposed peer gets fenced on its next mutating RPC."""
        state = self._tail_state
        new_term = max(self.meta_wal.highest_term, state.term, self.term) + 1
        self._install_state(state)
        self.term = new_term
        self.term_owner = self.endpoint.name
        self.acting = True
        self._missed_leases = 0
        # The crashed/partitioned ex-peer must re-bootstrap by pulling;
        # don't burn a push timeout against it on every mutation.
        self._push_ok = False
        self._meta("term", new_term, self.endpoint.name)
        self.registry.counter("cluster.master.standby_promotions").inc()
        self.journal.emit("master.promote", node=self.endpoint.name,
                          term=new_term, route_epoch=self.partitions.epoch,
                          applied_seq=self.meta_wal.seq)
        if self._on_promote is not None:
            self._on_promote(self)

    def demote(self, peer: Optional[str] = None) -> None:
        """Rejoin as warm standby (an ex-acting Master restarted after
        its term was superseded while it was down)."""
        if peer is not None:
            self.peer = peer
        self.acting = False
        self._missed_leases = 0
        self._tail_seq = None
        self._tail_state = MetaState()

    # -- durable-intent helpers (meta-WAL-backed dict/set mutations) ---------------

    def _sync_mark(self, acg_id: int, force: bool) -> None:
        if self._pending_follower_syncs.get(acg_id) == force:
            return
        self._pending_follower_syncs[acg_id] = force
        self._meta("sync", acg_id, int(force))

    def _sync_default(self, acg_id: int) -> None:
        if acg_id not in self._pending_follower_syncs:
            self._sync_mark(acg_id, False)

    def _sync_clear(self, acg_id: int) -> None:
        if self._pending_follower_syncs.pop(acg_id, None) is not None:
            self._meta("syncclear", acg_id)

    def _finish_pending(self, source: str, acg_id: int,
                        event: MigrationEvent) -> None:
        self._pending_finishes[(source, acg_id)] = event
        self._meta("finish", source, acg_id, event.target, event.moved_files)

    def _finish_clear(self, source: str, acg_id: int) -> None:
        if self._pending_finishes.pop((source, acg_id), None) is not None:
            self._meta("finishclear", source, acg_id)

    def _cancel_pending(self, source: str, acg_id: int) -> None:
        if (source, acg_id) not in self._pending_cancels:
            self._pending_cancels.add((source, acg_id))
            self._meta("cancel", source, acg_id)

    def _cancel_clear(self, source: str, acg_id: int) -> None:
        if (source, acg_id) in self._pending_cancels:
            self._pending_cancels.discard((source, acg_id))
            self._meta("cancelclear", source, acg_id)

    # -- cluster membership -----------------------------------------------------

    def register_index_node(self, name: str) -> None:
        """Add an Index Node to the cluster membership."""
        if name in self.index_nodes:
            raise ClusterError(f"index node already registered: {name}")
        self.index_nodes.append(name)
        self._meta("member", name)

    def _require_nodes(self) -> None:
        if not self.index_nodes:
            raise UnknownIndexNode("no index nodes registered")

    # -- index DDL ----------------------------------------------------------------

    def create_index(self, spec: IndexSpec) -> None:
        """Register a globally-named index and propagate to every IN."""
        self._require_acting()
        if spec.name in self.index_specs:
            raise ClusterError(f"index name already exists: {spec.name}")
        self.index_specs[spec.name] = spec
        self._meta("index", spec.name, spec.kind.value, tuple(spec.attrs))
        for node in self.index_nodes:
            self._node_call(node, "create_index", spec)

    # -- routing epochs -------------------------------------------------------------
    #
    # Every change to the partition→node map (placement, split, merge,
    # migration, failover) bumps a monotonic routing epoch and logs which
    # partition changed.  Clients cache a versioned route table and only
    # come back when an Index Node NACKs their epoch — taking the Master
    # off the per-batch hot path.

    def _count_route_rpc(self) -> None:
        """One client↔Master routing round-trip (the hot-path cost the
        epoch protocol exists to shrink)."""
        self.registry.counter("cluster.master.route_rpcs").inc()

    def _bump_routing(self, acg_id: int) -> int:
        """Advance the routing epoch for one partition's change."""
        epoch = self.partitions.bump_epoch()
        self._meta("epoch", epoch, acg_id)
        self._route_log.append((epoch, acg_id))
        if len(self._route_log) > _ROUTE_LOG_CAP:
            del self._route_log[:len(self._route_log) - _ROUTE_LOG_CAP]
        self.journal.emit("route.epoch_bump", node="master", acg_id=acg_id,
                          route_epoch=epoch)
        return epoch

    def _notify_owner(self, node: Optional[str], acg_id: int, epoch: int) -> None:
        """Tell an Index Node it now owns a partition (best-effort).

        A lost notification is safe: the node NACKs epoch-stamped updates
        it doesn't know about, the client falls back to Master-routed
        (unstamped) sends, and the node's create-on-demand path heals the
        ownership gap."""
        if node is None:
            return
        try:
            self._node_call(node, "own_partition", acg_id, epoch)
        except StaleMasterTerm:
            raise
        except ClusterError:
            pass

    # -- replica sets (RF > 1) --------------------------------------------------------

    def _follower_nodes(self, primary: str) -> Tuple[str, ...]:
        """Ring placement: the rf-1 live nodes after ``primary`` in
        registration order (deterministic, spreads follower load)."""
        if self.replica_sets is None or primary not in self.index_nodes:
            return ()
        start = self.index_nodes.index(primary)
        ring = [self.index_nodes[(start + i) % len(self.index_nodes)]
                for i in range(1, len(self.index_nodes))]
        return tuple(ring[:self.replica_sets.rf - 1])

    def _assign_followers(self, acg_id: int, force: bool = False) -> None:
        """(Re)install a partition's follower set on its primary.

        Best-effort: an unreachable primary parks the partition in the
        follower-sync debris set, retried every heartbeat round.
        Followers dropped from the set are told to forget their replica
        so a stale copy cannot linger behind a changed membership.

        ``force`` bumps the replication epoch even when membership is
        unchanged — required after any content change outside the
        replication stream (split, merge, adoption, re-placement), where
        the primary's log generation restarts and old-epoch watermarks
        stop being comparable.
        """
        if self.replica_sets is None:
            return
        try:
            partition = self.partitions.get(acg_id)
        except ClusterError:
            self._sync_clear(acg_id)
            return
        primary = partition.node
        if primary is None:
            return
        state = self.replica_sets.get(acg_id)
        before = set(state.followers) if state else set()
        followers = self._follower_nodes(primary)
        epoch = self.replica_sets.set_followers(acg_id, followers,
                                                force=force)
        self._meta("repl", acg_id, epoch, followers)
        for removed in sorted(before - set(followers)):
            if removed in self.index_nodes:
                try:
                    self._node_call(removed, "drop_follower", acg_id)
                except StaleMasterTerm:
                    raise
                except ClusterError:
                    pass
        try:
            self._node_call(primary, "set_followers", acg_id, followers, epoch)
        except StaleMasterTerm:
            raise
        except ClusterError:
            # The epoch bump (and any generation fence) is already
            # recorded master-side, so the retry only re-delivers it.
            self._sync_mark(acg_id, False)
        else:
            self._sync_clear(acg_id)

    def _retry_follower_syncs(self) -> None:
        for acg_id in sorted(self._pending_follower_syncs):
            self._assign_followers(
                acg_id, force=self._pending_follower_syncs.get(acg_id, False))

    def _route_replicas_of(self, acg_id: int) -> Tuple[str, ...]:
        if self.replica_sets is None:
            return ()
        state = self.replica_sets.get(acg_id)
        return state.followers if state is not None else ()

    def _effective_size(self, partition) -> int:
        """The larger of the Master's file map and the owner's reported
        count (clients place files without telling the Master)."""
        return max(partition.size,
                   self._reported_sizes.get(partition.partition_id, 0))

    def _least_loaded_effective(self, candidates: Sequence[str]) -> str:
        loads = {n: 0 for n in candidates}
        for p in self.partitions.partitions():
            if p.node in loads:
                loads[p.node] += self._effective_size(p)
        order = list(candidates)
        return min(order, key=lambda n: (loads[n], order.index(n)))

    def _build_route_table(self, since_epoch: int) -> RouteTable:
        current = self.partitions.epoch
        target = self.policy.cluster_target
        if since_epoch == current:
            return RouteTable(epoch=current, full=False,
                              cluster_target=target, fresh=True)
        by_id = {p.partition_id: p for p in self.partitions.partitions()}
        # The delta path works iff the change log still covers every
        # epoch in (since, current]; bumps append exactly one log entry
        # each, so coverage means the log reaches back to since+1.
        if (0 < since_epoch < current and self._route_log
                and self._route_log[0][0] <= since_epoch + 1):
            changed: List[int] = []
            seen: Set[int] = set()
            for epoch, acg_id in self._route_log:
                if epoch > since_epoch and acg_id not in seen:
                    seen.add(acg_id)
                    changed.append(acg_id)
            entries = []
            for acg_id in changed:
                p = by_id.get(acg_id)
                if p is None:
                    # Merged away: size -1 tells the client to forget it.
                    entries.append(RouteTableEntry(acg_id=acg_id, node=None, size=-1))
                else:
                    entries.append(RouteTableEntry(
                        acg_id=acg_id, node=p.node, size=self._effective_size(p),
                        replicas=self._route_replicas_of(acg_id)))
            self.machine.compute(_ROUTE_LOOKUP_OPS * max(1, len(entries)))
            return RouteTable(epoch=current, full=False, cluster_target=target,
                              entries=tuple(entries))
        full_entries = tuple(
            RouteTableEntry(acg_id=p.partition_id, node=p.node,
                            size=self._effective_size(p),
                            replicas=self._route_replicas_of(p.partition_id))
            for p in self.partitions.partitions())
        self.machine.compute(_ROUTE_LOOKUP_OPS * max(1, len(full_entries)))
        return RouteTable(epoch=current, full=True, cluster_target=target,
                          entries=full_entries)

    def route_table(self, since_epoch: int = 0) -> RouteTable:
        """Versioned routing snapshot: fresh marker, delta, or full table
        depending on how far behind ``since_epoch`` is."""
        self._require_acting()
        self._count_route_rpc()
        return self._build_route_table(since_epoch)

    def allocate_partitions(self, count: int = 1,
                            since_epoch: int = 0) -> RouteTable:
        """Create ``count`` empty partitions spread across Index Nodes
        and return the route-table delta that describes them.

        This is the client's slab allocator: instead of routing every
        new file through the Master, a client grabs a batch of open
        partitions once and fills them locally.  Spreading reserves one
        ``cluster_target`` of capacity per grant so consecutive grants
        alternate across nodes the way per-file placement would."""
        self._require_acting()
        self._require_nodes()
        self._count_route_rpc()
        loads = {n: 0 for n in self.index_nodes}
        for p in self.partitions.partitions():
            if p.node in loads:
                loads[p.node] += self._effective_size(p)
        for _ in range(max(1, count)):
            node = min(self.index_nodes,
                       key=lambda n: (loads[n], self.index_nodes.index(n)))
            partition = self.partitions.new_partition(node=node)
            self._meta("newpart", partition.partition_id, node)
            epoch = self._bump_routing(partition.partition_id)
            self._notify_owner(node, partition.partition_id, epoch)
            self._assign_followers(partition.partition_id)
            loads[node] += self.policy.cluster_target
        return self._build_route_table(since_epoch)

    # -- routing --------------------------------------------------------------------

    def _assign_new_file(self, file_id: int, hint_file: Optional[int]) -> int:
        """Place a new file: with its causal producer when known (that is
        the ACG locality rule), else into the smallest open partition,
        else into a brand-new partition on the least-loaded node."""
        self._require_nodes()
        if hint_file is not None:
            hinted = self.partitions.partition_of(hint_file)
            if hinted is not None:
                # Causality is the partitioning criterion: always co-locate
                # with the producer.  The background split (maybe_split)
                # bounds partition growth afterwards.
                self.partitions.add_file(hinted, file_id)
                self._meta("file", file_id, hinted)
                return hinted
        open_partitions = [p for p in self.partitions.partitions()
                           if self._effective_size(p) < self.policy.cluster_target]
        if open_partitions:
            smallest = min(open_partitions, key=self._effective_size)
            self.partitions.add_file(smallest.partition_id, file_id)
            self._meta("file", file_id, smallest.partition_id)
            return smallest.partition_id
        node = self._least_loaded_effective(self.index_nodes)
        partition = self.partitions.new_partition(files=[file_id], node=node)
        self._meta("newpart", partition.partition_id, node)
        self._meta("file", file_id, partition.partition_id)
        self._notify_owner(node, partition.partition_id,
                           self._bump_routing(partition.partition_id))
        self._assign_followers(partition.partition_id)
        return partition.partition_id

    def route_updates(self, file_ids: Sequence[int],
                      hints: Optional[Dict[int, int]] = None) -> List[RouteEntry]:
        """Answer: for each file, which ACG on which Index Node.

        Unknown files get assigned (the paper: MN allocates metadata for
        the new ACG and places it on the least-loaded IN).
        """
        hints = hints or {}
        self._require_acting()
        self._count_route_rpc()
        entries: List[RouteEntry] = []
        for file_id in file_ids:
            self.machine.compute(_ROUTE_LOOKUP_OPS)
            acg_id = self.partitions.partition_of(file_id)
            if acg_id is None:
                acg_id = self._assign_new_file(file_id, hints.get(file_id))
            partition = self.partitions.get(acg_id)
            if partition.node is None:
                partition.node = self._least_loaded_effective(self.index_nodes)
                self._meta("place", acg_id, partition.node)
                self._notify_owner(partition.node, acg_id,
                                   self._bump_routing(acg_id))
                # Re-placing a lost partition starts an empty store and a
                # fresh log; fence any followers surviving from before.
                self._assign_followers(acg_id, force=True)
            entries.append(RouteEntry(file_id=file_id, acg_id=acg_id, node=partition.node))
        return entries

    def route_search(self, index_name: Optional[str] = None) -> Dict[str, List[int]]:
        """node → ACG ids to search (every ACG that can carry the index)."""
        if index_name is not None and index_name not in self.index_specs:
            from repro.errors import UnknownIndexName

            raise UnknownIndexName(index_name)
        self._require_acting()
        self._count_route_rpc()
        routing: Dict[str, List[int]] = {}
        for partition in self.partitions.partitions():
            # Every placed partition is searched: with client-side
            # placement the Master cannot tell an empty partition from
            # one whose files it simply never heard about.
            if partition.node is None:
                continue
            self.machine.compute(_ROUTE_LOOKUP_OPS)
            routing.setdefault(partition.node, []).append(partition.partition_id)
        return routing

    # -- namespace change notifications ------------------------------------------------

    def file_created(self, file_id: int, hint_file: Optional[int] = None) -> RouteEntry:
        """Place a newly created file (assigning an ACG if unknown)."""
        self._require_acting()
        self.machine.compute(_ROUTE_LOOKUP_OPS)
        acg_id = self.partitions.partition_of(file_id)
        if acg_id is None:
            acg_id = self._assign_new_file(file_id, hint_file)
        partition = self.partitions.get(acg_id)
        if partition.node is None:
            partition.node = self._least_loaded_effective(self.index_nodes)
            self._meta("place", acg_id, partition.node)
            self._notify_owner(partition.node, acg_id, self._bump_routing(acg_id))
            # Fresh placement of a previously-lost partition: fence any
            # followers surviving from the old generation.
            self._assign_followers(acg_id, force=True)
        return RouteEntry(file_id=file_id, acg_id=acg_id, node=partition.node)

    def lookup_file(self, file_id: int) -> Optional[int]:
        """Read-only file→ACG lookup (None when the file is unindexed).

        Unlike :meth:`route_updates`, this never assigns anything."""
        self._require_acting()
        self.machine.compute(_ROUTE_LOOKUP_OPS)
        return self.partitions.partition_of(file_id)

    def file_deleted(self, file_id: int) -> Optional[RouteEntry]:
        """Forget a deleted file; returns where it used to live."""
        self._require_acting()
        self.machine.compute(_ROUTE_LOOKUP_OPS)
        acg_id = self.partitions.partition_of(file_id)
        if acg_id is None:
            return None
        node = self.partitions.get(acg_id).node
        self.partitions.remove_file(file_id)
        self._meta("unfile", file_id)
        return RouteEntry(file_id=file_id, acg_id=acg_id, node=node or "")

    # -- heartbeats and background maintenance ---------------------------------------------

    def tier_residency(self) -> Dict[str, Tuple[int, ...]]:
        """Heartbeat-reported cold-tier residency: node → frozen ACG ids
        (empty map/tuples when tiering is off)."""
        return dict(self._tier_residency)

    def report_heartbeat(self, heartbeat: Heartbeat) -> None:
        """Record one Index Node's heartbeat (and its per-ACG counts —
        the Master's only view of client-placed files)."""
        self.heartbeats[heartbeat.node] = heartbeat
        by_id = {p.partition_id: p for p in self.partitions.partitions()}
        for acg_id, size in heartbeat.acg_sizes:
            partition = by_id.get(acg_id)
            if partition is not None and partition.node == heartbeat.node:
                self._reported_sizes[acg_id] = size
        # Tier-residency piggyback: which partitions the node keeps
        # frozen on the cold tier (placement/status reads this; empty —
        # and free — when tiering is off).
        self._tier_residency[heartbeat.node] = tuple(
            getattr(heartbeat, "frozen_acgs", ()))
        # Partition-summary piggyback: accept a snapshot only from the
        # partition's *current* owner (a stale ex-owner's summary could
        # otherwise mask the live replica) and bump the version only on
        # real changes so quiescent clusters stay on the fresh path.
        for snapshot in getattr(heartbeat, "summaries", ()):
            partition = by_id.get(snapshot.acg_id)
            if partition is None or partition.node != heartbeat.node:
                continue
            if self._summaries.get(snapshot.acg_id) != snapshot:
                self._summaries[snapshot.acg_id] = snapshot
                self._summary_version += 1
        # Replication piggyback (RF > 1): fold watermark reports into the
        # replica-set state, and notice primaries that *stopped* reporting
        # replication for a partition they own — a crash-restart lost the
        # in-memory log and follower map, so the assignment is re-driven.
        if self.replica_sets is not None:
            primaried: Set[int] = set()
            for record in getattr(heartbeat, "replication", ()):
                if record[0] == "p":
                    _, acg_id, repl_epoch, last_seq, acked = record
                    partition = by_id.get(acg_id)
                    if partition is not None and partition.node == heartbeat.node:
                        self.replica_sets.record_primary(
                            acg_id, repl_epoch, last_seq, acked)
                        primaried.add(acg_id)
                elif record[0] == "f":
                    _, acg_id, repl_epoch, applied = record
                    self.replica_sets.record_follower(
                        acg_id, heartbeat.node, repl_epoch, applied)
            for acg_id, _size in heartbeat.acg_sizes:
                partition = by_id.get(acg_id)
                if (partition is not None and partition.node == heartbeat.node
                        and acg_id not in primaried):
                    # Crash-restart lost the in-memory log: the primary
                    # will start a fresh generation, so the reassignment
                    # must bump the epoch (force) to invalidate every
                    # old-generation watermark.
                    self._sync_mark(acg_id, True)
            # The symmetric heal: a node this Master lists as *follower*
            # of a partition but which reports no follower replica for it
            # lost that replica (crash-restart — follower state is
            # memory-only).  Its primary still carries a stale acked
            # watermark and would never re-stream, so void it explicitly;
            # the primary's next tick re-installs from snapshot.
            followed = {acg_id for acg_id in self.replica_sets.partitions()
                        if heartbeat.node in
                        (self.replica_sets.state(acg_id).followers or ())}
            reported = {record[1]
                        for record in getattr(heartbeat, "replication", ())
                        if record[0] == "f"}
            for acg_id in sorted(followed - reported):
                partition = by_id.get(acg_id)
                if partition is None or not partition.node:
                    continue
                # Same-generation heal (the primary's log is intact):
                # re-deliver the assignment, no epoch bump needed.
                self._sync_default(acg_id)
                try:
                    self._node_call(partition.node, "reset_follower_ack",
                                    acg_id, heartbeat.node)
                except ClusterError:
                    pass  # pending sync retries next poll

    def _drop_summary(self, acg_id: int) -> None:
        if self._summaries.pop(acg_id, None) is not None:
            self._summary_version += 1

    def summary_table(self, since_version: int = 0) -> SummaryTable:
        """Versioned dump of the partition-summary cache.

        Not a routing RPC (and not counted as one): clients poll this on
        their own throttle; the fresh marker makes the common quiescent
        poll nearly free."""
        self._require_acting()
        if since_version == self._summary_version:
            return SummaryTable(version=self._summary_version, fresh=True)
        entries = tuple(self._summaries[acg_id]
                        for acg_id in sorted(self._summaries))
        self.machine.compute(_SUMMARY_COPY_OPS * max(1, len(entries)))
        return SummaryTable(version=self._summary_version, entries=entries)

    def poll_heartbeats(self) -> List[str]:
        """Pull a heartbeat from every Index Node, then act on oversized
        ACGs (the split trigger).  Nodes whose RPC fails are recorded as
        silent — :meth:`detect_failed_nodes` turns silence into failure.

        With :attr:`auto_failover` on, this is also the failure detector's
        trigger: a node whose endpoint is conclusively down (``NodeDown``
        survives the retry policy) or whose heartbeat has gone stale past
        :attr:`heartbeat_timeout_s` is failed over right here.  Returns
        the nodes that were failed over this round (always empty when
        auto-failover is off).
        """
        from repro.errors import NodeDown, RpcTimeout

        if not self.acting:
            return []
        conclusively_down = []
        for node in list(self.index_nodes):
            try:
                heartbeat = self._node_call(node, "heartbeat")
            except NodeDown:
                # The endpoint itself is down — process death, not a lost
                # message (retries already ruled those out).
                conclusively_down.append(node)
                continue
            except RpcTimeout:
                # Ambiguous: the node may be fine behind a lossy link.
                # Leave it to staleness detection.
                continue
            except StaleMasterTerm:
                # Fenced: a newer term exists, so this Master was deposed
                # while partitioned.  _node_call already journaled the
                # deposal; abort the whole round — a stale Master must
                # not detect failures, fail anything over, or split.
                return []
            self.report_heartbeat(heartbeat)
        try:
            self._retry_migration_debris()
            self._retry_follower_syncs()
        except StaleMasterTerm:
            return []
        failed_over: List[str] = []
        if self.auto_failover:
            suspects = set(conclusively_down)
            suspects.update(self.detect_failed_nodes(self.heartbeat_timeout_s))
            for node in sorted(suspects):
                if node not in self.index_nodes:
                    continue
                try:
                    self.failover(node, auto=True)
                except StaleMasterTerm:
                    return failed_over
                except ClusterError:
                    # Nobody left to adopt the partitions; keep the node
                    # registered so a later recovery can pick it back up.
                    continue
                failed_over.append(node)
        try:
            self.maybe_split()
        except StaleMasterTerm:
            return failed_over
        return failed_over

    def _retry_migration_debris(self) -> None:
        """Re-drive migration protocol steps that failed mid-flight.

        A ``finish_migration`` the source never heard leaves it holding a
        handed-off replica behind a durable handoff intent (it forwards,
        never applies); a ``cancel_transfer`` the source never heard
        leaves it NACKing its own partition.  Both are safe states —
        retried here until the node answers or leaves the cluster."""
        by_id = {p.partition_id: p for p in self.partitions.partitions()}
        for (node, acg_id), event in list(self._pending_finishes.items()):
            partition = by_id.get(acg_id)
            if node not in self.index_nodes or (
                    partition is not None and partition.node == node):
                # The node left the cluster, or ownership has since come
                # back to it (re-migration/failover) — the debris is moot.
                self._finish_clear(node, acg_id)
                continue
            try:
                self._node_call(node, "finish_migration", acg_id)
            except StaleMasterTerm:
                raise
            except ClusterError:
                continue
            self._finish_clear(node, acg_id)
            event.outcome = "done"
            self.journal.emit("migration.done", node=event.target,
                              acg_id=acg_id, retried=True,
                              moved_files=event.moved_files)
        for (node, acg_id) in list(self._pending_cancels):
            if node not in self.index_nodes:
                self._cancel_clear(node, acg_id)
                continue
            try:
                self._node_call(node, "cancel_transfer", acg_id)
            except StaleMasterTerm:
                raise
            except ClusterError:
                continue
            self._cancel_clear(node, acg_id)

    def detect_failed_nodes(self, timeout_s: float = 15.0) -> List[str]:
        """Index Nodes whose last heartbeat is older than ``timeout_s``
        (or that never reported one since registering)."""
        now = self.machine.clock.now()
        failed = []
        for node in self.index_nodes:
            heartbeat = self.heartbeats.get(node)
            if heartbeat is None or now - heartbeat.timestamp > timeout_s:
                failed.append(node)
        return failed

    def failover(self, failed_node: str, auto: bool = False) -> int:
        """Reassign a dead node's ACGs to survivors from shared storage.

        Each of the failed node's partitions is adopted by the currently
        least-loaded *reachable* survivor, restoring from the checkpoint
        the dead node wrote to the shared file system.  Updates
        acknowledged after the last checkpoint are lost (they live in the
        dead node's local WAL) — the paper's consistency guarantee covers
        searches against live nodes, not durability across permanent node
        loss.

        Failover tolerates concurrent failures: an adoption target that
        is itself down (or times out) is skipped in favor of the next
        survivor.  If a partition finds no reachable adopter at all it
        stays on the failed node and the node stays registered, so the
        next heartbeat round retries the failover instead of stranding
        the partition forever.  Partial progress is safe — adopted
        partitions already point at their new home and are skipped on
        the retry.

        Returns the number of partitions moved.
        """
        from repro.cluster.persistence import replica_path
        from repro.errors import NodeDown, RpcTimeout

        if failed_node not in self.index_nodes:
            raise UnknownIndexNode(failed_node)
        survivors = [n for n in self.index_nodes if n != failed_node]
        if not survivors:
            raise ClusterError("no surviving index nodes to fail over to")
        moved_ids: List[int] = []
        lost_ids: List[int] = []
        promoted_ids: List[int] = []
        watermarks: List[Tuple[int, int]] = []
        # Best lagging promotion candidate per partition — reported on a
        # deferred round so the operator can see *how far* behind the
        # would-be adopter was.
        lag_watermarks: Dict[int, Tuple[str, int]] = {}
        stranded_ids: List[int] = []
        unreachable: Set[str] = set()
        victim_hb = self.heartbeats.get(failed_node)
        victim_heartbeat_t = victim_hb.timestamp if victim_hb is not None else 0.0
        with self.tracer.span("failover", failed_node=failed_node) as span:
            for partition in self.partitions.partitions():
                if partition.node != failed_node:
                    continue
                # Promotion first (RF > 1): a caught-up live follower
                # takes over with an epoch bump — no checkpoint read, no
                # WAL replay.  Only when no follower is viable does the
                # partition fall back to checkpoint adoption below.
                promoted_seq = self._try_promote(partition, unreachable,
                                                 lag_watermarks)
                if promoted_seq is not None:
                    promoted_ids.append(partition.partition_id)
                    watermarks.append((partition.partition_id, promoted_seq))
                    continue
                path = replica_path(failed_node, partition.partition_id)
                placed = False
                while not placed:
                    candidates = [n for n in survivors if n not in unreachable]
                    if not candidates:
                        stranded_ids.append(partition.partition_id)
                        break
                    target = self._least_loaded_effective(candidates)
                    try:
                        adopted = self._node_call(target, "adopt_acg", path)
                    except FileSystemError:
                        # The victim never checkpointed this ACG: its
                        # data is gone with the node.  Leave the
                        # partition unplaced so future updates re-create
                        # it instead of crashing the whole failover.
                        partition.node = None
                        self._meta("place", partition.partition_id, None)
                        lost_ids.append(partition.partition_id)
                        self._reported_sizes.pop(partition.partition_id, None)
                        self._drop_summary(partition.partition_id)
                        self._bump_routing(partition.partition_id)
                        self.registry.counter(
                            "cluster.master.partitions_lost").inc()
                        placed = True
                    except (NodeDown, RpcTimeout):
                        unreachable.add(target)
                    else:
                        partition.node = target
                        self._meta("place", partition.partition_id, target)
                        # The adopter's heartbeat hasn't fired yet; seed
                        # the reported size so load-aware placement sees
                        # the restored files immediately.
                        self._reported_sizes[partition.partition_id] = adopted
                        moved_ids.append(partition.partition_id)
                        self._notify_owner(
                            target, partition.partition_id,
                            self._bump_routing(partition.partition_id))
                        # Checkpoint adoption starts a new log generation
                        # on the adopter: fence immediately (force bump)
                        # so surviving old-generation followers can never
                        # qualify for promotion against the restored
                        # copy.  A dead node picked into the new ring
                        # self-heals on the next heartbeat round.
                        self._assign_followers(partition.partition_id,
                                               force=True)
                        placed = True
            span.set_attribute("moved", len(moved_ids))
            span.set_attribute("promoted", len(promoted_ids))
            span.set_attribute("stranded", len(stranded_ids))
        if stranded_ids and not moved_ids and not lost_ids and not promoted_ids:
            # Nothing could be placed this round: every survivor was
            # unreachable and every replica candidate was down or itself
            # lagging.  Name the deferral (instead of the old silent
            # retry) so stranded partitions are visible in the log, then
            # leave state untouched for the next heartbeat poll to retry.
            self.registry.counter("cluster.master.failover_deferred").inc()
            deferred_event = FailoverEvent(
                t=self.machine.clock.now(), node=failed_node,
                moved=(), lost=(), auto=auto, outcome="deferred",
                deferred=tuple(sorted(stranded_ids)),
                watermarks=tuple(sorted(
                    (acg, seq) for acg, (_node, seq) in lag_watermarks.items())),
                victim_heartbeat_t=victim_heartbeat_t)
            self.journal.emit("failover.deferred", node=failed_node,
                              payload=deferred_event, auto=auto,
                              deferred=list(deferred_event.deferred))
            raise ClusterError(
                f"no reachable survivor could adopt {failed_node}'s partitions")
        if not stranded_ids:
            self.index_nodes.remove(failed_node)
            self._meta("unmember", failed_node)
            self.heartbeats.pop(failed_node, None)
            if self.replica_sets is not None:
                # Partitions that used the dead node as a *follower* need
                # their replica sets rebuilt on the next round.
                for acg_id in self.replica_sets.partitions():
                    state = self.replica_sets.get(acg_id)
                    if state is not None and failed_node in state.followers:
                        self._sync_default(acg_id)
        self.registry.counter("cluster.master.failovers").inc()
        if auto:
            self.registry.counter("cluster.master.auto_failovers").inc()
        outcome = "promoted" if promoted_ids and not moved_ids else "adopted"
        event = FailoverEvent(
            t=self.machine.clock.now(), node=failed_node,
            moved=tuple(sorted(moved_ids)), lost=tuple(sorted(lost_ids)),
            auto=auto, outcome=outcome,
            promoted=tuple(sorted(promoted_ids)),
            watermarks=tuple(sorted(watermarks)),
            victim_heartbeat_t=victim_heartbeat_t)
        self.journal.emit(f"failover.{outcome}", node=failed_node,
                          payload=event, auto=auto,
                          moved=list(event.moved), lost=list(event.lost),
                          promoted=list(event.promoted))
        self.registry.counter(
            "cluster.master.reassigned_partitions").inc(
                len(moved_ids) + len(promoted_ids))
        return len(moved_ids) + len(promoted_ids)

    def _try_promote(self, partition, unreachable: Set[str],
                     lag_watermarks: Dict[int, Tuple[str, int]]) -> Optional[int]:
        """Promote a caught-up live follower of one partition, if any.

        Viability is checked against the primary's last *known* committed
        sequence with a live watermark query (heartbeat state may lag),
        and only within the current replication epoch: a follower whose
        live epoch differs belongs to an older log generation or
        membership, so its applied sequence is not comparable — promoting
        on it could resurrect split-away files or drop every post-restart
        acked write.  Returns the promoted replica's applied sequence, or
        None when no follower is viable — same-epoch lagging candidates
        leave their best watermark in ``lag_watermarks`` for the
        deferred-event report.
        """
        from repro.errors import NodeDown, RpcTimeout

        if self.replica_sets is None:
            return None
        acg_id = partition.partition_id
        state = self.replica_sets.get(acg_id)
        if state is None or not state.followers:
            return None
        target_seq = state.primary_seq
        for follower, _reported in self.replica_sets.promotion_candidates(acg_id):
            if (follower not in self.index_nodes or follower == partition.node
                    or follower in unreachable):
                continue
            try:
                follower_epoch, applied = self._node_call(
                    follower, "replica_watermark", acg_id)
            except (NodeDown, RpcTimeout):
                unreachable.add(follower)
                continue
            except StaleMasterTerm:
                raise
            except ClusterError:
                continue  # lost its follower state (crash-restarted)
            if follower_epoch != state.repl_epoch:
                continue  # stale generation/membership: not comparable
            if applied < target_seq:
                best = lag_watermarks.get(acg_id)
                if best is None or applied > best[1]:
                    lag_watermarks[acg_id] = (follower, applied)
                continue
            new_epoch = self.replica_sets.bump_epoch(acg_id)
            self._meta("repl", acg_id, new_epoch, state.followers)
            try:
                applied_seq, file_count = self._node_call(
                    follower, "promote_replica", acg_id, new_epoch)
            except (NodeDown, RpcTimeout):
                unreachable.add(follower)
                continue
            except StaleMasterTerm:
                raise
            except ClusterError:
                continue
            with self.tracer.span("promote", acg=acg_id,
                                  target=follower) as span:
                span.set_attribute("applied_seq", applied_seq)
            partition.node = follower
            self._meta("place", acg_id, follower)
            self._reported_sizes[acg_id] = file_count
            self._drop_summary(acg_id)
            self._notify_owner(follower, acg_id, self._bump_routing(acg_id))
            # Promotion continues the log generation (the new primary's
            # log is based at its applied watermark), so the rebuild of
            # its follower ring needs no forced generation bump.
            self._sync_default(acg_id)
            self.registry.counter("cluster.master.promotions").inc()
            return applied_seq
        return None

    def maybe_split(self) -> List[SplitDecision]:
        """Split every partition that outgrew the policy threshold.

        A partition whose owner is currently unreachable is skipped — the
        split re-triggers on a later round (or after failover).
        """
        from repro.errors import NodeDown, RpcTimeout

        decisions = []
        for partition in list(self.partitions.partitions()):
            if (self._effective_size(partition) > self.policy.split_threshold
                    and partition.node):
                try:
                    decisions.append(self._split_partition(partition.partition_id))
                except (NodeDown, RpcTimeout):
                    continue
        return decisions

    def _split_partition(self, acg_id: int) -> SplitDecision:
        partition = self.partitions.get(acg_id)
        source = partition.node
        assert source is not None
        with self.tracer.span("split", acg=acg_id, source=source):
            return self._split_partition_inner(acg_id, partition, source)

    def _split_partition_inner(self, acg_id: int, partition,
                               source: str) -> SplitDecision:
        halves = self._node_call(source, "compute_split", acg_id, self.policy)
        stay, move = set(halves[0]), set(halves[1])
        # Clients place files into partitions without telling the Master;
        # the split is the moment those become visible.  Adopt them into
        # the authoritative map before reconciling.
        for file_id in sorted(stay | move):
            if self.partitions.partition_of(file_id) is None:
                self.partitions.add_file(acg_id, file_id)
                self._meta("file", file_id, acg_id)
        # The IN's ACG may lag the MN's file map (weak ACG consistency);
        # reconcile against the authoritative mapping.
        known = set(partition.files)
        stay &= known
        move &= known
        for orphan in sorted(known - stay - move):
            (stay if len(stay) <= len(move) else move).add(orphan)
        target = self._least_loaded_effective(
            [n for n in self.index_nodes if n != source] or self.index_nodes)
        new_partition = self.partitions.split(acg_id, [stay, move], new_node=target)[1]
        self._meta("newpart", new_partition.partition_id, target)
        for file_id in sorted(move):
            self._meta("file", file_id, new_partition.partition_id)
        payload = self._node_call(source, "extract_partition", acg_id,
                                  tuple(sorted(move)))
        moved = self._node_call(target, "install_partition",
                                new_partition.partition_id, payload)
        # Both halves changed shape: clients must drop their per-file
        # routes for the source ACG and learn the new one.
        self._reported_sizes.pop(acg_id, None)
        self._drop_summary(acg_id)
        self._bump_routing(acg_id)
        self._notify_owner(target, new_partition.partition_id,
                           self._bump_routing(new_partition.partition_id))
        # Both halves changed content outside the replication stream; the
        # primaries re-bootstrap their followers from fresh snapshots,
        # and the forced epoch bump fences every pre-split watermark.
        self._assign_followers(acg_id, force=True)
        self._assign_followers(new_partition.partition_id, force=True)
        decision = SplitDecision(acg_id=acg_id, new_acg_id=new_partition.partition_id,
                                 source_node=source, target_node=target,
                                 moved_files=moved)
        self.splits.append(decision)
        self.registry.counter("cluster.master.splits").inc()
        return decision

    # -- load balancing and merging -------------------------------------------------------------
    #
    # Section IV: Index Nodes optimize "the organizations of file indices
    # (splitting large indices, merging small ones, or migrate
    # indices/ACGs to other IndexNodes) under the instructions from
    # MasterNode".  Splits are handled above; these two cover the rest.

    def migrate_partition(self, acg_id: int, target: str) -> int:
        """Move one ACG to another Index Node *online*; returns files moved.

        The protocol keeps the partition writable throughout:

        1. ``transfer_out`` — the source commits its cache, checkpoints
           the replica to shared storage, packages its full contents
           **without deleting them**, and durably records a *handoff
           intent*: from here on it forwards updates for this ACG to the
           target instead of applying them, and its WAL replay skips
           this ACG's records (a crashed source must not resurrect data
           it handed off).
        2. ``install_partition`` + ``checkpoint_acg`` — the target takes
           the contents and immediately checkpoints them, so a target
           crash right after the flip still fails over with the data.
        3. The Master flips routing (epoch bump + ``own_partition``).
           Clients with the old route get forwarded during the brief
           dual-ownership window, then refresh on the next NACK.
        4. ``finish_migration`` — the source drops its replica, clears
           the intent, and removes its now-stale shared checkpoint.

        A failure before the flip rolls back (``cancel_transfer``); a
        failure after the flip leaves only cleanup pending.  Either
        cleanup RPC failing parks the step in a debris map retried on
        every heartbeat round — both intermediate states are safe.
        """
        partition = self.partitions.get(acg_id)
        source = partition.node
        if source is None:
            raise ClusterError(f"partition {acg_id} is not placed yet")
        if target not in self.index_nodes:
            raise UnknownIndexNode(target)
        if source == target:
            return 0
        if any(k[1] == acg_id for k in self._pending_finishes) or \
                any(k[1] == acg_id for k in self._pending_cancels):
            self._retry_migration_debris()
            if any(k[1] == acg_id for k in self._pending_finishes) or \
                    any(k[1] == acg_id for k in self._pending_cancels):
                raise ClusterError(
                    f"partition {acg_id} has unresolved migration debris")
        event = MigrationEvent(acg_id=acg_id, source=source, target=target,
                               t_start=self.machine.clock.now())
        with self.tracer.span("migrate", acg=acg_id, source=source,
                              target=target):
            self.journal.emit("migration.start", node=source, acg_id=acg_id,
                              payload=event, target=target)
            try:
                payload = self._node_call(source, "transfer_out", acg_id, target)
            except ClusterError:
                event.outcome = "aborted"
                self.journal.emit("migration.aborted", node=source,
                                  acg_id=acg_id, stage="transfer_out")
                self.registry.counter("cluster.master.migrations_aborted").inc()
                raise
            try:
                moved = self._node_call(target, "install_partition", acg_id,
                                        payload)
                self._node_call(target, "checkpoint_acg", acg_id)
            except StaleMasterTerm:
                raise
            except ClusterError:
                # The target never (durably) took ownership: undo the
                # target's partial install if we can, and lift the
                # source's handoff intent (deferring if it is down).
                try:
                    self._node_call(target, "drop_partition", acg_id)
                except StaleMasterTerm:
                    raise
                except ClusterError:
                    pass
                try:
                    self._node_call(source, "cancel_transfer", acg_id)
                except StaleMasterTerm:
                    raise
                except ClusterError:
                    self._cancel_pending(source, acg_id)
                event.outcome = "aborted"
                self.journal.emit("migration.aborted", node=source,
                                  acg_id=acg_id, stage="install")
                self.registry.counter("cluster.master.migrations_aborted").inc()
                raise
            # Point of no return: flip routing to the target.
            partition.node = target
            self._meta("place", acg_id, target)
            epoch = self._bump_routing(acg_id)
            event.t_flip = self.machine.clock.now()
            event.epoch = epoch
            event.moved_files = moved
            self._notify_owner(target, acg_id, epoch)
            # The target's copy starts a fresh replication log: force the
            # epoch bump so old-generation follower watermarks are fenced.
            self._assign_followers(acg_id, force=True)
            self.registry.counter("cluster.master.migrations").inc()
            try:
                self._node_call(source, "finish_migration", acg_id)
            except StaleMasterTerm:
                raise
            except ClusterError:
                event.outcome = "finish_deferred"
                self._finish_pending(source, acg_id, event)
                self.journal.emit("migration.finish_deferred", node=source,
                                  acg_id=acg_id, route_epoch=epoch)
                self.registry.counter(
                    "cluster.master.migration_finish_deferred").inc()
            else:
                event.outcome = "done"
                self.journal.emit("migration.done", node=target,
                                  acg_id=acg_id, route_epoch=epoch,
                                  moved_files=moved)
        return moved

    def rebalance(self, tolerance: float = 0.25) -> int:
        """Move partitions until no node exceeds the mean load by more
        than ``tolerance``; returns how many partitions moved.

        Greedy: repeatedly take the smallest partition off the most
        loaded node and give it to the least loaded one, while that
        actually reduces imbalance.
        """
        if len(self.index_nodes) < 2:
            return 0
        moves = 0
        while True:
            loads = {n: 0 for n in self.index_nodes}
            for p in self.partitions.partitions():
                if p.node in loads:
                    loads[p.node] += self._effective_size(p)
            mean = sum(loads.values()) / len(loads)
            heavy = max(loads, key=lambda n: loads[n])
            light = min(loads, key=lambda n: loads[n])
            if mean == 0 or loads[heavy] <= mean * (1 + tolerance):
                return moves
            candidates = [p for p in self.partitions.partitions()
                          if p.node == heavy and self._effective_size(p)]
            if not candidates:
                return moves
            victim = min(candidates, key=self._effective_size)
            # Moving must not just swap the imbalance around.
            if loads[light] + self._effective_size(victim) >= loads[heavy]:
                return moves
            self.migrate_partition(victim.partition_id, light)
            moves += 1

    def merge_partitions(self, keep_id: int, absorb_id: int) -> int:
        """Fold one ACG into another (anti-fragmentation); returns files
        absorbed.  The surviving partition keeps its node; the absorbed
        one's contents migrate there and its id disappears."""
        if keep_id == absorb_id:
            raise ClusterError("cannot merge a partition with itself")
        keep = self.partitions.get(keep_id)
        absorb = self.partitions.get(absorb_id)
        if keep.node is None or absorb.node is None:
            raise ClusterError("both partitions must be placed before merging")
        # file_ids=None extracts everything the node hosts, including
        # client-placed files the Master never heard about.
        payload = self._node_call(absorb.node, "extract_partition",
                                  absorb_id, None)
        moved = self._node_call(keep.node, "install_partition", keep_id, payload)
        self._node_call(absorb.node, "drop_partition", absorb_id)
        for file_id in list(absorb.files):
            self.partitions.add_file(keep_id, file_id)
            self._meta("file", file_id, keep_id)
        for file_id, _attrs, _path in payload["files"]:
            if self.partitions.partition_of(file_id) is None:
                self.partitions.add_file(keep_id, file_id)
                self._meta("file", file_id, keep_id)
        self.partitions.drop_partition(absorb_id)
        self._meta("droppart", absorb_id)
        self._reported_sizes.pop(absorb_id, None)
        self._reported_sizes.pop(keep_id, None)
        self._drop_summary(absorb_id)
        self._drop_summary(keep_id)
        # Two visible routing changes: the absorbed id disappears (size
        # -1 in deltas) and the survivor's contents changed shape.
        self._bump_routing(absorb_id)
        self._bump_routing(keep_id)
        if self.replica_sets is not None:
            state = self.replica_sets.get(absorb_id)
            for follower in (state.followers if state else ()):
                if follower in self.index_nodes:
                    try:
                        self._node_call(follower, "drop_follower", absorb_id)
                    except StaleMasterTerm:
                        raise
                    except ClusterError:
                        pass
            self.replica_sets.drop(absorb_id)
            self._meta("repldrop", absorb_id)
            self._sync_clear(absorb_id)
            # The survivor absorbed content outside the replication
            # stream: new log generation, forced fence.
            self._assign_followers(keep_id, force=True)
        return moved

    def merge_small_partitions(self, min_size: Optional[int] = None) -> int:
        """Merge undersized partitions pairwise until none (or one) is
        left below ``min_size`` (default: half the clustering target).
        Returns the number of merges performed."""
        threshold = min_size if min_size is not None else self.policy.cluster_target // 2
        merges = 0
        while True:
            small = sorted((p for p in self.partitions.partitions()
                            if 0 < self._effective_size(p) < threshold and p.node),
                           key=self._effective_size)
            if len(small) < 2:
                return merges
            keep, absorb = small[0], small[1]
            self.merge_partitions(keep.partition_id, absorb.partition_id)
            merges += 1

    # -- checkpointing ------------------------------------------------------------------------

    def checkpoint(self) -> List[Tuple[int, Optional[str], Tuple[int, ...]]]:
        """Flush index metadata to shared storage (crash protection).

        Also folds the meta-WAL into a fresh snapshot image, so the log
        a restarted Master replays (and the tail a standby streams) stays
        bounded by the checkpoint period.  The durability charge below
        already covers the metadata image; the meta-WAL itself carries
        no separate simulated cost.
        """
        records = self.partitions.to_records()
        nbytes = sum(_CHECKPOINT_BYTES_PER_FILE * (len(r[2]) + 1) for r in records)
        # Metadata checkpoints land on shared storage, not the local disk.
        with self.tracer.span("master_checkpoint", bytes=max(512, nbytes)):
            self._shared_device.append(max(512, nbytes))
        if self.acting:
            self.meta_wal.checkpoint(self._build_meta_state().snapshot())
        self.checkpoints_written += 1
        self.registry.counter("cluster.master.checkpoints").inc()
        return records

    @classmethod
    def restore(cls, machine: Machine, rpc: RpcNetwork,
                records: List[Tuple[int, Optional[str], Tuple[int, ...]]],
                index_nodes: Sequence[str],
                policy: PartitioningPolicy = PartitioningPolicy()) -> "MasterNode":
        """Rebuild a Master Node from its last checkpoint."""
        master = cls(machine, rpc, policy=policy)
        master.partitions = PartitionManager.from_records(records)
        for node in index_nodes:
            master.register_index_node(node)
        return master
