"""Master Node.

The central index-metadata and coordination server (Section IV): it holds
the file→ACG mapping and ACG locations, routes client requests, assigns
new ACGs to the least-loaded Index Node, tracks heartbeats, periodically
checkpoints its metadata to shared storage, and coordinates background
splits and migrations.  It never serves file I/O or index contents itself,
which is why the paper argues one Master scales to hundreds of Index
Nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.messages import Heartbeat, RouteEntry
from repro.core.partition_manager import PartitionManager
from repro.core.partitioner import PartitioningPolicy
from repro.errors import ClusterError, FileSystemError, UnknownIndexNode
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER
from repro.query.planner import IndexSpec
from repro.sim.machine import Machine
from repro.sim.rpc import RpcEndpoint, RpcNetwork

_ROUTE_LOOKUP_OPS = 1_500   # one hash probe into the file→ACG map
_CHECKPOINT_BYTES_PER_FILE = 24


@dataclass
class SplitDecision:
    """Record of one coordinated split (kept for observability/tests)."""

    acg_id: int
    new_acg_id: int
    source_node: str
    target_node: str
    moved_files: int


@dataclass
class FailoverEvent:
    """Record of one failover: what moved, what was lost, and when.

    The chaos invariant checker uses these to tell *expected* data loss
    (updates acknowledged after the victim's last checkpoint die with it)
    apart from genuine bugs: a file is excused only if its partition
    appears here and its ack time postdates the victim's checkpoint.
    """

    t: float
    node: str
    moved: Tuple[int, ...]
    lost: Tuple[int, ...]
    auto: bool = False


class MasterNode:
    """Propeller's metadata and coordination server."""

    def __init__(self, machine: Machine, rpc: RpcNetwork,
                 policy: PartitioningPolicy = PartitioningPolicy(),
                 registry: Optional[MetricsRegistry] = None,
                 auto_failover: bool = False,
                 heartbeat_timeout_s: float = 15.0) -> None:
        self.machine = machine
        self.rpc = rpc
        self.policy = policy
        # When on, the heartbeat poll itself fails silent nodes over —
        # off by default so explicit-failover deployments keep control.
        self.auto_failover = auto_failover
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.partitions = PartitionManager()
        # Coordination events (failovers, splits, checkpoints) count into
        # the deployment-wide registry; a standalone Master gets its own.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = NULL_TRACER
        from repro.sim.disk import DiskDevice

        self._shared_device = DiskDevice(machine.clock, machine.disk.model)
        self.index_nodes: List[str] = []
        self.index_specs: Dict[str, IndexSpec] = {}
        self.heartbeats: Dict[str, Heartbeat] = {}
        self.splits: List[SplitDecision] = []
        self.failover_log: List[FailoverEvent] = []
        self.checkpoints_written = 0
        self.endpoint = RpcEndpoint("master")
        for method, handler in [
            ("register_index_node", self.register_index_node),
            ("create_index", self.create_index),
            ("route_updates", self.route_updates),
            ("route_search", self.route_search),
            ("file_created", self.file_created),
            ("file_deleted", self.file_deleted),
            ("lookup_file", self.lookup_file),
            ("report_heartbeat", self.report_heartbeat),
        ]:
            self.endpoint.register(method, handler)
        rpc.add_endpoint(self.endpoint)

    # -- cluster membership -----------------------------------------------------

    def register_index_node(self, name: str) -> None:
        """Add an Index Node to the cluster membership."""
        if name in self.index_nodes:
            raise ClusterError(f"index node already registered: {name}")
        self.index_nodes.append(name)

    def _require_nodes(self) -> None:
        if not self.index_nodes:
            raise UnknownIndexNode("no index nodes registered")

    # -- index DDL ----------------------------------------------------------------

    def create_index(self, spec: IndexSpec) -> None:
        """Register a globally-named index and propagate to every IN."""
        if spec.name in self.index_specs:
            raise ClusterError(f"index name already exists: {spec.name}")
        self.index_specs[spec.name] = spec
        for node in self.index_nodes:
            self.rpc.call(node, "create_index", spec)

    # -- routing --------------------------------------------------------------------

    def _assign_new_file(self, file_id: int, hint_file: Optional[int]) -> int:
        """Place a new file: with its causal producer when known (that is
        the ACG locality rule), else into the smallest open partition,
        else into a brand-new partition on the least-loaded node."""
        self._require_nodes()
        if hint_file is not None:
            hinted = self.partitions.partition_of(hint_file)
            if hinted is not None:
                # Causality is the partitioning criterion: always co-locate
                # with the producer.  The background split (maybe_split)
                # bounds partition growth afterwards.
                self.partitions.add_file(hinted, file_id)
                return hinted
        open_partitions = [p for p in self.partitions.partitions()
                           if p.size < self.policy.cluster_target]
        if open_partitions:
            smallest = min(open_partitions, key=lambda p: p.size)
            self.partitions.add_file(smallest.partition_id, file_id)
            return smallest.partition_id
        node = self.partitions.least_loaded(self.index_nodes)
        partition = self.partitions.new_partition(files=[file_id], node=node)
        return partition.partition_id

    def route_updates(self, file_ids: Sequence[int],
                      hints: Optional[Dict[int, int]] = None) -> List[RouteEntry]:
        """Answer: for each file, which ACG on which Index Node.

        Unknown files get assigned (the paper: MN allocates metadata for
        the new ACG and places it on the least-loaded IN).
        """
        hints = hints or {}
        entries: List[RouteEntry] = []
        for file_id in file_ids:
            self.machine.compute(_ROUTE_LOOKUP_OPS)
            acg_id = self.partitions.partition_of(file_id)
            if acg_id is None:
                acg_id = self._assign_new_file(file_id, hints.get(file_id))
            partition = self.partitions.get(acg_id)
            if partition.node is None:
                partition.node = self.partitions.least_loaded(self.index_nodes)
            entries.append(RouteEntry(file_id=file_id, acg_id=acg_id, node=partition.node))
        return entries

    def route_search(self, index_name: Optional[str] = None) -> Dict[str, List[int]]:
        """node → ACG ids to search (every ACG that can carry the index)."""
        if index_name is not None and index_name not in self.index_specs:
            from repro.errors import UnknownIndexName

            raise UnknownIndexName(index_name)
        routing: Dict[str, List[int]] = {}
        for partition in self.partitions.partitions():
            if partition.node is None or not partition.files:
                continue
            self.machine.compute(_ROUTE_LOOKUP_OPS)
            routing.setdefault(partition.node, []).append(partition.partition_id)
        return routing

    # -- namespace change notifications ------------------------------------------------

    def file_created(self, file_id: int, hint_file: Optional[int] = None) -> RouteEntry:
        """Place a newly created file (assigning an ACG if unknown)."""
        self.machine.compute(_ROUTE_LOOKUP_OPS)
        acg_id = self.partitions.partition_of(file_id)
        if acg_id is None:
            acg_id = self._assign_new_file(file_id, hint_file)
        partition = self.partitions.get(acg_id)
        if partition.node is None:
            partition.node = self.partitions.least_loaded(self.index_nodes)
        return RouteEntry(file_id=file_id, acg_id=acg_id, node=partition.node)

    def lookup_file(self, file_id: int) -> Optional[int]:
        """Read-only file→ACG lookup (None when the file is unindexed).

        Unlike :meth:`route_updates`, this never assigns anything."""
        self.machine.compute(_ROUTE_LOOKUP_OPS)
        return self.partitions.partition_of(file_id)

    def file_deleted(self, file_id: int) -> Optional[RouteEntry]:
        """Forget a deleted file; returns where it used to live."""
        self.machine.compute(_ROUTE_LOOKUP_OPS)
        acg_id = self.partitions.partition_of(file_id)
        if acg_id is None:
            return None
        node = self.partitions.get(acg_id).node
        self.partitions.remove_file(file_id)
        return RouteEntry(file_id=file_id, acg_id=acg_id, node=node or "")

    # -- heartbeats and background maintenance ---------------------------------------------

    def report_heartbeat(self, heartbeat: Heartbeat) -> None:
        """Record one Index Node's heartbeat."""
        self.heartbeats[heartbeat.node] = heartbeat

    def poll_heartbeats(self) -> List[str]:
        """Pull a heartbeat from every Index Node, then act on oversized
        ACGs (the split trigger).  Nodes whose RPC fails are recorded as
        silent — :meth:`detect_failed_nodes` turns silence into failure.

        With :attr:`auto_failover` on, this is also the failure detector's
        trigger: a node whose endpoint is conclusively down (``NodeDown``
        survives the retry policy) or whose heartbeat has gone stale past
        :attr:`heartbeat_timeout_s` is failed over right here.  Returns
        the nodes that were failed over this round (always empty when
        auto-failover is off).
        """
        from repro.errors import NodeDown, RpcTimeout

        conclusively_down = []
        for node in list(self.index_nodes):
            try:
                heartbeat = self.rpc.call(node, "heartbeat")
            except NodeDown:
                # The endpoint itself is down — process death, not a lost
                # message (retries already ruled those out).
                conclusively_down.append(node)
                continue
            except RpcTimeout:
                # Ambiguous: the node may be fine behind a lossy link.
                # Leave it to staleness detection.
                continue
            self.report_heartbeat(heartbeat)
        failed_over: List[str] = []
        if self.auto_failover:
            suspects = set(conclusively_down)
            suspects.update(self.detect_failed_nodes(self.heartbeat_timeout_s))
            for node in sorted(suspects):
                if node not in self.index_nodes:
                    continue
                try:
                    self.failover(node, auto=True)
                except ClusterError:
                    # Nobody left to adopt the partitions; keep the node
                    # registered so a later recovery can pick it back up.
                    continue
                failed_over.append(node)
        self.maybe_split()
        return failed_over

    def detect_failed_nodes(self, timeout_s: float = 15.0) -> List[str]:
        """Index Nodes whose last heartbeat is older than ``timeout_s``
        (or that never reported one since registering)."""
        now = self.machine.clock.now()
        failed = []
        for node in self.index_nodes:
            heartbeat = self.heartbeats.get(node)
            if heartbeat is None or now - heartbeat.timestamp > timeout_s:
                failed.append(node)
        return failed

    def failover(self, failed_node: str, auto: bool = False) -> int:
        """Reassign a dead node's ACGs to survivors from shared storage.

        Each of the failed node's partitions is adopted by the currently
        least-loaded *reachable* survivor, restoring from the checkpoint
        the dead node wrote to the shared file system.  Updates
        acknowledged after the last checkpoint are lost (they live in the
        dead node's local WAL) — the paper's consistency guarantee covers
        searches against live nodes, not durability across permanent node
        loss.

        Failover tolerates concurrent failures: an adoption target that
        is itself down (or times out) is skipped in favor of the next
        survivor.  If a partition finds no reachable adopter at all it
        stays on the failed node and the node stays registered, so the
        next heartbeat round retries the failover instead of stranding
        the partition forever.  Partial progress is safe — adopted
        partitions already point at their new home and are skipped on
        the retry.

        Returns the number of partitions moved.
        """
        from repro.cluster.persistence import replica_path
        from repro.errors import NodeDown, RpcTimeout

        if failed_node not in self.index_nodes:
            raise UnknownIndexNode(failed_node)
        survivors = [n for n in self.index_nodes if n != failed_node]
        if not survivors:
            raise ClusterError("no surviving index nodes to fail over to")
        moved_ids: List[int] = []
        lost_ids: List[int] = []
        stranded = 0
        unreachable: Set[str] = set()
        with self.tracer.span("failover", failed_node=failed_node) as span:
            for partition in self.partitions.partitions():
                if partition.node != failed_node:
                    continue
                path = replica_path(failed_node, partition.partition_id)
                placed = False
                while not placed:
                    candidates = [n for n in survivors if n not in unreachable]
                    if not candidates:
                        stranded += 1
                        break
                    target = self.partitions.least_loaded(candidates)
                    try:
                        self.rpc.call(target, "adopt_acg", path)
                    except FileSystemError:
                        # The victim never checkpointed this ACG: its
                        # data is gone with the node.  Leave the
                        # partition unplaced so future updates re-create
                        # it instead of crashing the whole failover.
                        partition.node = None
                        lost_ids.append(partition.partition_id)
                        self.registry.counter(
                            "cluster.master.partitions_lost").inc()
                        placed = True
                    except (NodeDown, RpcTimeout):
                        unreachable.add(target)
                    else:
                        partition.node = target
                        moved_ids.append(partition.partition_id)
                        placed = True
            span.set_attribute("moved", len(moved_ids))
            span.set_attribute("stranded", stranded)
        if stranded and not moved_ids and not lost_ids:
            # Nothing could be done this round; leave every bit of state
            # untouched and let the next heartbeat poll retry.
            raise ClusterError(
                f"no reachable survivor could adopt {failed_node}'s partitions")
        if not stranded:
            self.index_nodes.remove(failed_node)
            self.heartbeats.pop(failed_node, None)
        self.registry.counter("cluster.master.failovers").inc()
        if auto:
            self.registry.counter("cluster.master.auto_failovers").inc()
        self.failover_log.append(FailoverEvent(
            t=self.machine.clock.now(), node=failed_node,
            moved=tuple(sorted(moved_ids)), lost=tuple(sorted(lost_ids)),
            auto=auto))
        self.registry.counter(
            "cluster.master.reassigned_partitions").inc(len(moved_ids))
        return len(moved_ids)

    def maybe_split(self) -> List[SplitDecision]:
        """Split every partition that outgrew the policy threshold.

        A partition whose owner is currently unreachable is skipped — the
        split re-triggers on a later round (or after failover).
        """
        from repro.errors import NodeDown, RpcTimeout

        decisions = []
        for partition in list(self.partitions.partitions()):
            if partition.size > self.policy.split_threshold and partition.node:
                try:
                    decisions.append(self._split_partition(partition.partition_id))
                except (NodeDown, RpcTimeout):
                    continue
        return decisions

    def _split_partition(self, acg_id: int) -> SplitDecision:
        partition = self.partitions.get(acg_id)
        source = partition.node
        assert source is not None
        with self.tracer.span("split", acg=acg_id, source=source):
            return self._split_partition_inner(acg_id, partition, source)

    def _split_partition_inner(self, acg_id: int, partition,
                               source: str) -> SplitDecision:
        halves = self.rpc.call(source, "compute_split", acg_id, self.policy)
        stay, move = set(halves[0]), set(halves[1])
        # The IN's ACG may lag the MN's file map (weak ACG consistency);
        # reconcile against the authoritative mapping.
        known = set(partition.files)
        stay &= known
        move &= known
        for orphan in sorted(known - stay - move):
            (stay if len(stay) <= len(move) else move).add(orphan)
        target = self.partitions.least_loaded(
            [n for n in self.index_nodes if n != source] or self.index_nodes)
        new_partition = self.partitions.split(acg_id, [stay, move], new_node=target)[1]
        payload = self.rpc.call(source, "extract_partition", acg_id, tuple(sorted(move)))
        moved = self.rpc.call(target, "install_partition",
                              new_partition.partition_id, payload)
        decision = SplitDecision(acg_id=acg_id, new_acg_id=new_partition.partition_id,
                                 source_node=source, target_node=target,
                                 moved_files=moved)
        self.splits.append(decision)
        self.registry.counter("cluster.master.splits").inc()
        return decision

    # -- load balancing and merging -------------------------------------------------------------
    #
    # Section IV: Index Nodes optimize "the organizations of file indices
    # (splitting large indices, merging small ones, or migrate
    # indices/ACGs to other IndexNodes) under the instructions from
    # MasterNode".  Splits are handled above; these two cover the rest.

    def migrate_partition(self, acg_id: int, target: str) -> int:
        """Move one ACG to another Index Node; returns files moved."""
        partition = self.partitions.get(acg_id)
        source = partition.node
        if source is None:
            raise ClusterError(f"partition {acg_id} is not placed yet")
        if target not in self.index_nodes:
            raise UnknownIndexNode(target)
        if source == target:
            return 0
        payload = self.rpc.call(source, "extract_partition", acg_id,
                                tuple(sorted(partition.files)))
        moved = self.rpc.call(target, "install_partition", acg_id, payload)
        self.rpc.call(source, "drop_partition", acg_id)
        partition.node = target
        return moved

    def rebalance(self, tolerance: float = 0.25) -> int:
        """Move partitions until no node exceeds the mean load by more
        than ``tolerance``; returns how many partitions moved.

        Greedy: repeatedly take the smallest partition off the most
        loaded node and give it to the least loaded one, while that
        actually reduces imbalance.
        """
        if len(self.index_nodes) < 2:
            return 0
        moves = 0
        while True:
            loads = {n: self.partitions.node_load(n) for n in self.index_nodes}
            mean = sum(loads.values()) / len(loads)
            heavy = max(loads, key=lambda n: loads[n])
            light = min(loads, key=lambda n: loads[n])
            if mean == 0 or loads[heavy] <= mean * (1 + tolerance):
                return moves
            candidates = [p for p in self.partitions.partitions()
                          if p.node == heavy and p.files]
            if not candidates:
                return moves
            victim = min(candidates, key=lambda p: p.size)
            # Moving must not just swap the imbalance around.
            if loads[light] + victim.size >= loads[heavy]:
                return moves
            self.migrate_partition(victim.partition_id, light)
            moves += 1

    def merge_partitions(self, keep_id: int, absorb_id: int) -> int:
        """Fold one ACG into another (anti-fragmentation); returns files
        absorbed.  The surviving partition keeps its node; the absorbed
        one's contents migrate there and its id disappears."""
        if keep_id == absorb_id:
            raise ClusterError("cannot merge a partition with itself")
        keep = self.partitions.get(keep_id)
        absorb = self.partitions.get(absorb_id)
        if keep.node is None or absorb.node is None:
            raise ClusterError("both partitions must be placed before merging")
        payload = self.rpc.call(absorb.node, "extract_partition", absorb_id,
                                tuple(sorted(absorb.files)))
        moved = self.rpc.call(keep.node, "install_partition", keep_id, payload)
        self.rpc.call(absorb.node, "drop_partition", absorb_id)
        for file_id in list(absorb.files):
            self.partitions.add_file(keep_id, file_id)
        self.partitions.drop_partition(absorb_id)
        return moved

    def merge_small_partitions(self, min_size: Optional[int] = None) -> int:
        """Merge undersized partitions pairwise until none (or one) is
        left below ``min_size`` (default: half the clustering target).
        Returns the number of merges performed."""
        threshold = min_size if min_size is not None else self.policy.cluster_target // 2
        merges = 0
        while True:
            small = sorted((p for p in self.partitions.partitions()
                            if p.files and p.size < threshold and p.node),
                           key=lambda p: p.size)
            if len(small) < 2:
                return merges
            keep, absorb = small[0], small[1]
            self.merge_partitions(keep.partition_id, absorb.partition_id)
            merges += 1

    # -- checkpointing ------------------------------------------------------------------------

    def checkpoint(self) -> List[Tuple[int, Optional[str], Tuple[int, ...]]]:
        """Flush index metadata to shared storage (crash protection)."""
        records = self.partitions.to_records()
        nbytes = sum(_CHECKPOINT_BYTES_PER_FILE * (len(r[2]) + 1) for r in records)
        # Metadata checkpoints land on shared storage, not the local disk.
        with self.tracer.span("master_checkpoint", bytes=max(512, nbytes)):
            self._shared_device.append(max(512, nbytes))
        self.checkpoints_written += 1
        self.registry.counter("cluster.master.checkpoints").inc()
        return records

    @classmethod
    def restore(cls, machine: Machine, rpc: RpcNetwork,
                records: List[Tuple[int, Optional[str], Tuple[int, ...]]],
                index_nodes: Sequence[str],
                policy: PartitioningPolicy = PartitioningPolicy()) -> "MasterNode":
        """Rebuild a Master Node from its last checkpoint."""
        master = cls(machine, rpc, policy=policy)
        master.partitions = PartitionManager.from_records(records)
        for node in index_nodes:
            master.register_index_node(node)
        return master
