"""The lazy file-indexing cache.

Section IV: an Index Node appends each file-indexing request to the WAL
and parks it in an in-memory cache.  Cached requests are committed to the
real indices on whichever comes first —

* a timeout (default 5 s), or
* the arrival of the next file-search request (searches must see every
  acknowledged update, so they force a commit).

Because searches are rare relative to updates in file-system workloads,
almost all commits are timeout-batched, which is why the re-index latency
in Figure 10 is microseconds, not milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cluster.messages import IndexUpdate
from repro.obs.tracing import NULL_TRACER

DEFAULT_TIMEOUT_S = 5.0

CommitFn = Callable[[int, List[IndexUpdate]], None]


@dataclass
class CacheStats:
    """Counters the cache accumulates (commit reasons, volumes)."""
    updates_cached: int = 0
    timeout_commits: int = 0
    search_commits: int = 0
    flush_commits: int = 0
    updates_committed: int = 0


class IndexCache:
    """Per-Index-Node buffer of uncommitted updates, bucketed by ACG."""

    def __init__(self, commit_fn: CommitFn, timeout_s: float = DEFAULT_TIMEOUT_S) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout must be positive: {timeout_s}")
        self._commit_fn = commit_fn
        self.timeout_s = timeout_s
        self._pending: Dict[int, List[IndexUpdate]] = {}
        self._oldest: Dict[int, float] = {}
        self.stats = CacheStats()
        # Commits open a span so searches show the index-cache commit
        # they forced (zero simulated cost; no-op until tracing is wired).
        self.tracer = NULL_TRACER

    def __len__(self) -> int:
        return sum(len(v) for v in self._pending.values())

    def pending_acgs(self) -> List[int]:
        """ACG ids that currently have uncommitted updates."""
        return list(self._pending)

    def pending_ops(self, acg_id: int) -> tuple:
        """The uncommitted updates parked for one ACG (empty if none).

        Public read-only view — callers (locate probes, heartbeat
        builders, prune validation) must not reach into ``_pending``.
        """
        return tuple(self._pending.get(acg_id, ()))

    def add(self, acg_id: int, update: IndexUpdate, now: float) -> None:
        """Park one update; records arrival time for the timeout."""
        bucket = self._pending.setdefault(acg_id, [])
        if not bucket:
            self._oldest[acg_id] = now
        bucket.append(update)
        self.stats.updates_cached += 1

    def _commit(self, acg_id: int, reason: str) -> int:
        updates = self._pending.pop(acg_id, [])
        self._oldest.pop(acg_id, None)
        if not updates:
            return 0
        self._commit_fn(acg_id, updates)
        self.stats.updates_committed += len(updates)
        if reason == "timeout":
            self.stats.timeout_commits += 1
        elif reason == "flush":
            self.stats.flush_commits += 1
        else:
            self.stats.search_commits += 1
        return len(updates)

    def commit_due(self, now: float) -> int:
        """Timeout path: commit every bucket older than ``timeout_s``."""
        due = [acg for acg, t0 in self._oldest.items() if now - t0 >= self.timeout_s]
        return sum(self._commit(acg, "timeout") for acg in due)

    def commit_for_search(self, acg_id: int) -> int:
        """Search path: commit one ACG's pending updates right now.

        Always a traced stage — a search forces the commit check even
        when nothing is pending, and profiles should show that.
        """
        with self.tracer.span("cache_commit", acg=acg_id, reason="search") as span:
            committed = self._commit(acg_id, "search")
            span.set_attribute("updates", committed)
        return committed

    def commit_all(self) -> int:
        """Flush everything (shutdown / checkpoint).

        A flush is its own commit reason: counting these as "timeout"
        commits (the old behaviour) skewed the timeout-vs-search batching
        ratio every checkpoint, which is exactly the figure-10 signal the
        stats exist to explain.
        """
        return sum(self._commit(acg, "flush") for acg in list(self._pending))

    def estimated_bytes(self) -> int:
        """Approximate RAM held by parked updates (per-tier accounting).

        Per update: the serialized payload (``wire_bytes``) plus ~48
        bytes of list/object overhead — the same order the WAL charges,
        so the hot tier's gauge is comparable to the log's.
        """
        return sum(48 + u.wire_bytes()
                   for bucket in self._pending.values() for u in bucket)

    def next_deadline(self) -> Optional[float]:
        """When the earliest bucket times out (None if empty)."""
        if not self._oldest:
            return None
        return min(self._oldest.values()) + self.timeout_s
