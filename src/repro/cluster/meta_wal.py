"""Durable Master metadata log: append, checkpoint, deterministic replay.

The Master's partition map, routing epoch, replica-set generations,
membership, and in-flight migration/failover intents used to live only
in process memory — a Master crash reset every epoch and forgot every
durable intent.  :class:`MetaWal` gives the control plane the same
discipline the Index Node WAL gives the data plane: every mutation is
appended as one CRC-framed record *before* it takes effect anywhere
else, a periodic checkpoint folds the log into a snapshot image, and
crash recovery replays snapshot + surviving records into a
:class:`MetaState` that rebuilds byte-identical Master state.  Epochs
and terms therefore continue monotonically across a restart — client
route caches stay valid, and no refresh storm follows recovery.

Records are term-prefixed tuples ``(term, kind, *payload)``.  The log
fences stale terms on append (:class:`~repro.errors.StaleMasterTerm`):
once a record at term *T* is durable, nothing below *T* may append —
the second authority, alongside Index Node fencing, that keeps a
deposed-but-alive Master from mutating state it no longer owns.

The warm standby tails this log: ``entries_since(seq)`` hands it the
decoded records past its applied watermark (or ``None`` when a
checkpoint truncated past the watermark, telling it to re-bootstrap
from the snapshot image via :meth:`MetaWal.install`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cluster.wal import WriteAheadLog
from repro.errors import StaleMasterTerm

# Snapshot image format version (first payload field of the image tuple).
_SNAP_VERSION = 1


class MetaState:
    """Replayable image of the Master's durable metadata.

    Shared by both consumers of the meta-log: crash recovery (replay the
    on-log bytes into a state, install it) and the warm standby (apply
    streamed records as they arrive, install on promotion).  Everything
    here is *durable* state; soft state — heartbeats, reported sizes,
    partition summaries, the route-delta log — is deliberately absent
    and re-learned from the next heartbeat round.
    """

    def __init__(self) -> None:
        self.term = 1
        self.term_owner = ""
        self.epoch = 1
        self.members: List[str] = []
        # index name -> (name, kind value, attrs tuple)
        self.specs: Dict[str, Tuple[str, str, Tuple[str, ...]]] = {}
        # acg id -> [node or None, file-id set]
        self.partitions: Dict[int, List[Any]] = {}
        self.file_map: Dict[int, int] = {}
        self.next_partition_id = 1
        # acg id -> (repl epoch, follower tuple)
        self.repl: Dict[int, Tuple[int, Tuple[str, ...]]] = {}
        # acg id -> force flag (pending follower-sync intents)
        self.syncs: Dict[int, bool] = {}
        # (source node, acg id) -> (target node, moved files)
        self.finishes: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self.cancels: Set[Tuple[str, int]] = set()

    # -- record application ---------------------------------------------------

    def apply(self, record: Tuple[Any, ...]) -> None:
        """Fold one ``(term, kind, *payload)`` record into the state."""
        kind = record[1]
        p = record[2:]
        if kind == "term":
            if p[0] >= self.term:
                self.term = p[0]
                self.term_owner = p[1]
        elif kind == "member":
            if p[0] not in self.members:
                self.members.append(p[0])
        elif kind == "unmember":
            if p[0] in self.members:
                self.members.remove(p[0])
        elif kind == "index":
            self.specs[p[0]] = (p[0], p[1], tuple(p[2]))
        elif kind == "epoch":
            self.epoch = max(self.epoch, p[0])
        elif kind == "newpart":
            pid, node = p[0], p[1]
            self.partitions[pid] = [node, set()]
            self.next_partition_id = max(self.next_partition_id, pid + 1)
        elif kind == "file":
            fid, pid = p[0], p[1]
            old = self.file_map.get(fid)
            if old != pid:
                if old is not None and old in self.partitions:
                    self.partitions[old][1].discard(fid)
                if pid in self.partitions:
                    self.partitions[pid][1].add(fid)
                    self.file_map[fid] = pid
        elif kind == "unfile":
            pid = self.file_map.pop(p[0], None)
            if pid is not None and pid in self.partitions:
                self.partitions[pid][1].discard(p[0])
        elif kind == "place":
            if p[0] in self.partitions:
                self.partitions[p[0]][0] = p[1]
        elif kind == "droppart":
            dropped = self.partitions.pop(p[0], None)
            if dropped is not None:
                for fid in dropped[1]:
                    self.file_map.pop(fid, None)
        elif kind == "repl":
            self.repl[p[0]] = (p[1], tuple(p[2]))
        elif kind == "repldrop":
            self.repl.pop(p[0], None)
        elif kind == "sync":
            self.syncs[p[0]] = bool(p[1])
        elif kind == "syncclear":
            self.syncs.pop(p[0], None)
        elif kind == "finish":
            self.finishes[(p[0], p[1])] = (p[2], p[3])
        elif kind == "finishclear":
            self.finishes.pop((p[0], p[1]), None)
        elif kind == "cancel":
            self.cancels.add((p[0], p[1]))
        elif kind == "cancelclear":
            self.cancels.discard((p[0], p[1]))
        # Unknown kinds are skipped, not fatal: a newer Master's log must
        # stay replayable by the standby one release behind it.

    # -- snapshot image (nested tuples: WAL-serializable primitives) ----------

    def snapshot(self) -> Tuple[Any, ...]:
        """Encode the state as one WAL-serializable nested tuple."""
        return (
            _SNAP_VERSION,
            self.term,
            self.term_owner,
            self.epoch,
            tuple(self.members),
            tuple(self.specs[name] for name in self.specs),
            tuple((pid, entry[0], tuple(sorted(entry[1])))
                  for pid, entry in self.partitions.items()),
            self.next_partition_id,
            tuple((acg, pair[0], pair[1]) for acg, pair in self.repl.items()),
            tuple((acg, int(force)) for acg, force in self.syncs.items()),
            tuple((src, acg, tgt, moved)
                  for (src, acg), (tgt, moved) in self.finishes.items()),
            tuple(sorted(self.cancels)),
        )

    @classmethod
    def from_snapshot(cls, image: Tuple[Any, ...]) -> "MetaState":
        """Decode a :meth:`snapshot` image."""
        state = cls()
        (_, state.term, state.term_owner, state.epoch, members, specs,
         partitions, next_id, repl, syncs, finishes, cancels) = image
        state.members = list(members)
        state.specs = {name: (name, kind, tuple(attrs))
                       for name, kind, attrs in specs}
        for pid, node, files in partitions:
            state.partitions[pid] = [node, set(files)]
            for fid in files:
                state.file_map[fid] = pid
        state.next_partition_id = next_id
        state.repl = {acg: (epoch, tuple(followers))
                      for acg, epoch, followers in repl}
        state.syncs = {acg: bool(force) for acg, force in syncs}
        state.finishes = {(src, acg): (tgt, moved)
                          for src, acg, tgt, moved in finishes}
        state.cancels = {(src, acg) for src, acg in cancels}
        return state


class MetaWal:
    """Append-only, term-fenced, torn-tail-tolerant Master metadata log.

    Wraps :class:`WriteAheadLog` with no attached disk: the simulated
    durability cost of Master metadata already rides the shared-storage
    checkpoint charge (``MasterNode.checkpoint``), which this class must
    not double-count.  ``seq`` is a monotonically increasing record
    count that survives checkpoints (``base`` marks how much of it the
    snapshot image covers) so standby watermarks stay comparable across
    truncations.
    """

    def __init__(self) -> None:
        self.log = WriteAheadLog(disk=None)
        self.snapshot: Optional[Tuple[Any, ...]] = None
        self.base = 0  # records folded into the snapshot image
        self.seq = 0  # records ever appended (never resets)
        self.entries: List[Tuple[Any, ...]] = []  # decoded, since base
        self.highest_term = 0
        self.checkpoints_taken = 0
        self.replay_dropped_total = 0
        self.replay_dropped_bytes_total = 0

    def append(self, term: int, record: Tuple[Any, ...]) -> int:
        """Durably append one ``(kind, *payload)`` record at ``term``.

        Raises :class:`StaleMasterTerm` when ``term`` is below the
        highest term already recorded — the log-level fence that stops a
        deposed Master's mutations at the durability boundary."""
        if term < self.highest_term:
            raise StaleMasterTerm(
                f"meta-wal append at term {term} behind recorded term "
                f"{self.highest_term}", term=self.highest_term)
        self.highest_term = term
        framed = (term,) + tuple(record)
        self.log.append(framed)
        self.entries.append(framed)
        self.seq += 1
        return self.seq

    def entries_since(self, since_seq: int) -> Optional[List[Tuple[Any, ...]]]:
        """Decoded records with sequence > ``since_seq``.

        Returns ``None`` when a checkpoint truncated past ``since_seq``:
        the tail alone can no longer bring the caller current, and it
        must re-bootstrap from the snapshot image."""
        if since_seq < self.base:
            return None
        return self.entries[since_seq - self.base:]

    def checkpoint(self, image: Tuple[Any, ...]) -> None:
        """Fold everything appended so far into ``image``; truncate."""
        self.snapshot = tuple(image)
        self.base = self.seq
        self.entries = []
        self.log.truncate()
        self.checkpoints_taken += 1

    def install(self, image: Tuple[Any, ...], seq: int, term: int) -> None:
        """Adopt a peer's checkpoint image (standby bootstrap).

        Term-fenced like :meth:`append`: a snapshot streamed by a stale
        peer must never roll a newer log back."""
        if term < self.highest_term:
            raise StaleMasterTerm(
                f"meta-wal install at term {term} behind recorded term "
                f"{self.highest_term}", term=self.highest_term)
        self.snapshot = tuple(image)
        self.base = seq
        self.seq = seq
        self.entries = []
        self.log.truncate()
        self.highest_term = term

    def recover(self) -> MetaState:
        """Crash recovery: replay snapshot + surviving log bytes.

        Decodes the *on-log bytes* — not the in-memory decode cache,
        which died with the process — so a torn tail (the record
        mid-write when the Master crashed) is dropped and counted
        exactly as Index Node WAL recovery does.  Realigns ``seq`` and
        ``entries`` to the surviving prefix."""
        state = (MetaState.from_snapshot(self.snapshot)
                 if self.snapshot is not None else MetaState())
        survivors: List[Tuple[Any, ...]] = []
        highest = state.term
        for record in self.log.replay():
            state.apply(record)
            survivors.append(record)
            highest = max(highest, record[0])
        self.replay_dropped_total += self.log.replay_dropped
        self.replay_dropped_bytes_total += self.log.replay_dropped_bytes
        self.entries = survivors
        self.seq = self.base + len(survivors)
        self.highest_term = highest
        return state

    def simulate_torn_tail(self, drop_bytes: int) -> None:
        """Chop bytes off the log tail (crash injection for tests)."""
        self.log.simulate_torn_tail(drop_bytes)
