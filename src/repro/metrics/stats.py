"""Latency collection and time-series recording."""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

_RESERVOIR_SEED = 0x5EED


class LatencyCollector:
    """Accumulates per-request latencies; answers summary statistics.

    By default every sample is kept (exact percentiles).  Long-running
    benchmarks can pass ``max_samples`` to switch to a bounded uniform
    reservoir: count/mean/total/min/max stay exact (tracked by scalar
    accumulators), while percentiles become estimates over at most
    ``max_samples`` retained values — memory no longer grows with the
    run.  The reservoir RNG is seeded, keeping runs deterministic.
    """

    def __init__(self, name: str = "", max_samples: Optional[int] = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError(f"max_samples must be positive: {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._rng = random.Random(_RESERVOIR_SEED) if max_samples else None
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def add(self, seconds: float) -> None:
        """Record one sample."""
        self._count += 1
        self._total += seconds
        self._min = seconds if self._min is None else min(self._min, seconds)
        self._max = seconds if self._max is None else max(self._max, seconds)
        if self.max_samples is None or len(self._samples) < self.max_samples:
            self._samples.append(seconds)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.max_samples:
                self._samples[slot] = seconds

    def __len__(self) -> int:
        return self._count

    @property
    def samples(self) -> List[float]:
        """A copy of the recorded samples (the reservoir, when bounded)."""
        return list(self._samples)

    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty); exact in both modes."""
        return self._total / self._count if self._count else 0.0

    def total(self) -> float:
        """Sum of all samples; exact in both modes."""
        return self._total

    def minimum(self) -> float:
        """Smallest sample (0.0 when empty); exact in both modes."""
        return self._min if self._min is not None else 0.0

    def maximum(self) -> float:
        """Largest sample (0.0 when empty); exact in both modes."""
        return self._max if self._max is not None else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100].

        Exact by default; an estimate over the reservoir when
        ``max_samples`` bounds retention.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100]: {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.name or 'latency'}: n={len(self)} "
                f"mean={self.mean():.6f}s p50={self.percentile(50):.6f}s "
                f"p99={self.percentile(99):.6f}s max={self.maximum():.6f}s")


class TimeSeries:
    """(timestamp, value) pairs, e.g. recall over execution time."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._points: List[Tuple[float, float]] = []

    def add(self, t: float, value: float) -> None:
        """Record one sample."""
        self._points.append((t, value))

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> List[Tuple[float, float]]:
        """A copy of all (timestamp, value) points."""
        return list(self._points)

    def values(self) -> List[float]:
        """Just the values, in insertion order."""
        return [v for _, v in self._points]

    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        values = self.values()
        return sum(values) / len(values) if values else 0.0

    def minimum(self) -> float:
        """Smallest sample (0.0 when empty)."""
        values = self.values()
        return min(values) if values else 0.0

    def final(self) -> float:
        """The last recorded value (0.0 when empty)."""
        return self._points[-1][1] if self._points else 0.0
