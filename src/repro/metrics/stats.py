"""Latency collection and time-series recording."""

from __future__ import annotations

import math
from typing import List, Tuple


class LatencyCollector:
    """Accumulates per-request latencies; answers summary statistics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []

    def add(self, seconds: float) -> None:
        """Record one sample."""
        self._samples.append(seconds)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """A copy of all recorded samples."""
        return list(self._samples)

    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    def total(self) -> float:
        """Sum of all samples."""
        return sum(self._samples)

    def minimum(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return min(self._samples) if self._samples else 0.0

    def maximum(self) -> float:
        """Largest sample (0.0 when empty)."""
        return max(self._samples) if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100]."""
        if not self._samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100]: {p}")
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.name or 'latency'}: n={len(self)} "
                f"mean={self.mean():.6f}s p50={self.percentile(50):.6f}s "
                f"p99={self.percentile(99):.6f}s max={self.maximum():.6f}s")


class TimeSeries:
    """(timestamp, value) pairs, e.g. recall over execution time."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._points: List[Tuple[float, float]] = []

    def add(self, t: float, value: float) -> None:
        """Record one sample."""
        self._points.append((t, value))

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> List[Tuple[float, float]]:
        """A copy of all (timestamp, value) points."""
        return list(self._points)

    def values(self) -> List[float]:
        """Just the values, in insertion order."""
        return [v for _, v in self._points]

    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        values = self.values()
        return sum(values) / len(values) if values else 0.0

    def minimum(self) -> float:
        """Smallest sample (0.0 when empty)."""
        values = self.values()
        return min(values) if values else 0.0

    def final(self) -> float:
        """The last recorded value (0.0 when empty)."""
        return self._points[-1][1] if self._points else 0.0
