"""Fixed-width rendering for benchmark output.

Every bench prints the same rows/series the paper's tables and figures
report, through these helpers, so EXPERIMENTS.md can quote them verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """A plain fixed-width table (no external deps)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, points: Sequence[tuple],
                  x_label: str = "t", y_label: str = "value") -> str:
    """A figure's data series as aligned columns."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"  {_fmt(x):>12}  {_fmt(y)}")
    return "\n".join(lines)


def format_duration(seconds: float) -> str:
    """Human-scale duration: µs/ms/s as appropriate."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:.1f}"
        if abs(cell) >= 1:
            return f"{cell:.3f}"
        return f"{cell:.6f}"
    return str(cell)
