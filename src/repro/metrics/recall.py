"""Search-quality metrics.

The paper's accuracy metric is *recall*: the fraction of relevant files
that the search returned (Section II, citing the standard definition).
"""

from __future__ import annotations

from typing import Collection, Set, TypeVar

T = TypeVar("T")


def recall(returned: Collection[T], relevant: Collection[T]) -> float:
    """|returned ∩ relevant| / |relevant|; 1.0 when nothing is relevant."""
    relevant_set = set(relevant)
    if not relevant_set:
        return 1.0
    return len(set(returned) & relevant_set) / len(relevant_set)


def precision(returned: Collection[T], relevant: Collection[T]) -> float:
    """|returned ∩ relevant| / |returned|; 1.0 when nothing was returned."""
    returned_set = set(returned)
    if not returned_set:
        return 1.0
    return len(returned_set & set(relevant)) / len(returned_set)
