"""Measurement utilities: recall/precision, latency statistics, and the
fixed-width table/series renderers all benchmarks share."""

from repro.metrics.recall import precision, recall
from repro.metrics.reporting import format_duration, render_series, render_table
from repro.metrics.stats import LatencyCollector, TimeSeries

__all__ = [
    "precision",
    "recall",
    "format_duration",
    "render_series",
    "render_table",
    "LatencyCollector",
    "TimeSeries",
]
