"""Network cost model.

The testbed's NetGear gigabit switch is modelled as per-message latency
(propagation + switching + kernel stack) plus serialization delay at line
rate.  Broadcast fan-out to *k* Index Nodes charges only the slowest leg,
matching the paper's parallel search dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.clock import SimClock


@dataclass
class NetworkStats:
    """Message/byte counters for the shared network."""
    messages: int = 0
    bytes_sent: int = 0


@dataclass
class NetworkModel:
    """Gigabit-Ethernet-style network shared by a cluster.

    ``latency_s`` is the one-way per-message cost (defaults to 100 µs, a
    typical same-switch RTT/2 through the kernel stack in 2014);
    ``bandwidth_bytes_per_s`` defaults to 1 Gb/s.
    """

    clock: SimClock
    latency_s: float = 100e-6
    bandwidth_bytes_per_s: float = 125e6
    stats: NetworkStats = field(default_factory=NetworkStats)

    def message_cost(self, nbytes: int) -> float:
        """Virtual seconds to deliver one message of ``nbytes``."""
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def send(self, nbytes: int) -> None:
        """Charge one point-to-point message."""
        self.stats.messages += 1
        self.stats.bytes_sent += nbytes
        self.clock.charge(self.message_cost(nbytes))

    def send_local(self, nbytes: int) -> None:
        """A message that never leaves the machine (single-node mode).

        A loopback RPC still crosses two process boundaries — socket
        write, scheduler, socket read — which cost ~25 µs one-way on the
        testbed era's Linux.  This is a large share of Propeller's inline
        per-operation indexing overhead in Table VI.
        """
        self.stats.messages += 1
        self.clock.charge(25e-6)

    def fanout(self, sizes: list) -> None:
        """Charge a parallel fan-out: legs overlap, so pay only the
        slowest message (plus per-message accounting)."""
        if not sizes:
            return
        self.stats.messages += len(sizes)
        self.stats.bytes_sent += sum(sizes)
        self.clock.charge(max(self.message_cost(n) for n in sizes))
