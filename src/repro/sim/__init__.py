"""Discrete-event simulation substrate.

The paper evaluates Propeller on a 9-node Linux cluster with 7 200-RPM hard
drives and a gigabit switch.  This subpackage replaces that testbed with a
cost-model simulation: a virtual clock (:class:`SimClock`), device models
that charge virtual time for seeks, transfers, page faults and network hops,
and a tiny synchronous RPC layer.  Benchmarks report *simulated seconds*,
which reproduce the shapes of the paper's results (who wins, by what factor,
where crossovers fall) without the authors' hardware.
"""

from repro.sim.clock import SimClock
from repro.sim.disk import DiskDevice, HDDModel, SSDModel
from repro.sim.events import EventLoop, PeriodicTask
from repro.sim.machine import Cluster, Machine, MachineSpec
from repro.sim.memory import PageCache
from repro.sim.network import NetworkModel
from repro.sim.rpc import RpcEndpoint, RpcNetwork

__all__ = [
    "SimClock",
    "DiskDevice",
    "HDDModel",
    "SSDModel",
    "EventLoop",
    "PeriodicTask",
    "Cluster",
    "Machine",
    "MachineSpec",
    "PageCache",
    "NetworkModel",
    "RpcEndpoint",
    "RpcNetwork",
]
