"""Storage device cost models.

The paper's testbed used Seagate Barracuda ST31000524AS drives (7 200 RPM,
32 MB cache).  :class:`HDDModel` charges the classic three-component cost —
seek + rotational latency + transfer — with a sequential-access discount:
back-to-back requests at adjacent offsets skip the seek and rotation, which
is exactly the locality effect Propeller's small partitions exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracing import NULL_TRACER
from repro.sim.clock import SimClock


@dataclass(frozen=True)
class HDDModel:
    """Cost constants for a 7 200-RPM SATA hard drive.

    Defaults approximate the paper's Seagate Barracuda: ~8.5 ms average
    seek, 4.16 ms average rotational latency (half a revolution at 7 200
    RPM), and ~125 MB/s sequential bandwidth.
    """

    avg_seek_s: float = 0.0085
    avg_rotation_s: float = 0.00416
    bandwidth_bytes_per_s: float = 125e6

    def random_access_cost(self, nbytes: int) -> float:
        """Cost of one random read/write of ``nbytes``."""
        return self.avg_seek_s + self.avg_rotation_s + nbytes / self.bandwidth_bytes_per_s

    def sequential_access_cost(self, nbytes: int) -> float:
        """Cost of a transfer that continues the previous request."""
        return nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class SSDModel:
    """Cost constants for a SATA SSD (used by ablations, not the paper)."""

    read_latency_s: float = 0.0001
    write_latency_s: float = 0.0002
    bandwidth_bytes_per_s: float = 500e6

    def random_access_cost(self, nbytes: int) -> float:
        """Seconds for one random access of ``nbytes``."""
        return self.read_latency_s + nbytes / self.bandwidth_bytes_per_s

    def sequential_access_cost(self, nbytes: int) -> float:
        """Seconds for a transfer continuing the previous request."""
        return nbytes / self.bandwidth_bytes_per_s


@dataclass
class DiskStats:
    """Counters accumulated by a :class:`DiskDevice`."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    busy_seconds: float = 0.0


class DiskDevice:
    """A disk attached to a machine; charges I/O costs to the shared clock.

    Sequentiality is detected from byte offsets: a request whose offset
    equals the previous request's end continues the stream and pays only
    transfer cost.  Everything else pays a full seek + rotation.
    """

    def __init__(self, clock: SimClock, model=None) -> None:
        self.clock = clock
        self.model = model if model is not None else HDDModel()
        self.stats = DiskStats()
        # Per-IO counts land on whichever span is open when the access
        # happens (zero simulated cost; no-op until tracing is wired).
        self.tracer = NULL_TRACER
        # Fault injection (chaos): when attached, reads may raise
        # DiskIOError after paying the access cost — the medium-error
        # case real drives report.  None means the device is healthy.
        self.faults = None
        self._next_sequential_offset: int | None = None

    def _charge(self, offset: int, nbytes: int) -> None:
        if offset == self._next_sequential_offset:
            cost = self.model.sequential_access_cost(nbytes)
        else:
            cost = self.model.random_access_cost(nbytes)
            self.stats.seeks += 1
            self.tracer.annotate("disk_seeks")
        self._next_sequential_offset = offset + nbytes
        self.stats.busy_seconds += cost
        self.tracer.annotate("disk_busy_s", cost)
        self.clock.charge(cost)

    def read(self, offset: int, nbytes: int) -> None:
        """Charge the cost of reading ``nbytes`` at ``offset``.

        With a fault injector attached, the read may fail with
        :class:`~repro.errors.DiskIOError` *after* paying the access cost
        (the drive retried internally, then reported a medium error).
        """
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.tracer.annotate("disk_reads")
        self._charge(offset, nbytes)
        if self.faults is not None and self.faults.disk_read_fails():
            from repro.errors import DiskIOError

            raise DiskIOError(f"injected medium error at offset {offset}")

    def write(self, offset: int, nbytes: int) -> None:
        """Charge the cost of writing ``nbytes`` at ``offset``."""
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.tracer.annotate("disk_writes")
        self._charge(offset, nbytes)

    def append(self, nbytes: int) -> None:
        """Charge a log-style append: sequential after the first write."""
        offset = self._next_sequential_offset
        if offset is None:
            offset = 0
        self.write(offset, nbytes)

    def reset_head(self) -> None:
        """Forget sequential state (e.g. another process moved the arm)."""
        self._next_sequential_offset = None
