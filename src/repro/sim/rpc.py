"""Simulated synchronous RPC.

Propeller's client talks to the Master Node and Index Nodes over RPC.  The
simulation keeps calls synchronous (the paper's request path is
request/response) and charges: request message + handler work (whatever the
handler itself charges) + response message.

Fault tolerance lives at this layer too.  A :class:`RetryPolicy` gives
every call a timeout, exponential backoff with seeded jitter, and a total
virtual-time budget; an attached fault injector (``RpcNetwork.faults``,
see :mod:`repro.chaos.faults`) can drop, delay, or duplicate individual
messages, which is what the retry machinery exists to survive.  Without a
policy and without faults the request path is byte-for-byte the old
two-message exchange.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ClusterError, NodeDown, RpcTimeout
from repro.obs.tracing import NULL_TRACER
from repro.sim.network import NetworkModel

Handler = Callable[..., Any]

# Rough serialized size of an RPC envelope plus a typical small payload.
_DEFAULT_MSG_BYTES = 256

# What a caller waits before declaring a lost message timed out when no
# RetryPolicy overrides it (a generous same-switch request deadline).
DEFAULT_RPC_TIMEOUT_S = 0.25

# Errors the retry loop treats as transient.  Anything else (unknown
# method, handler bugs) fails immediately — retrying would not help.
_RETRIABLE = (NodeDown, RpcTimeout)


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + capped exponential backoff with jitter for one RPC.

    ``timeout_s`` is how long the caller waits for a reply before giving
    up on one attempt; backoff between attempts grows geometrically from
    ``base_backoff_s`` (capped at ``max_backoff_s``) with up to
    ``jitter_frac`` of itself added from the caller's seeded RNG.
    ``budget_s`` caps the *total* extra virtual time (timeouts plus
    backoff) one logical call may burn before the last error escapes —
    the tail-latency bound a real client would enforce.
    """

    max_attempts: int = 3
    timeout_s: float = DEFAULT_RPC_TIMEOUT_S
    base_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 1.0
    jitter_frac: float = 0.1
    budget_s: float = 5.0

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = min(self.max_backoff_s,
                   self.base_backoff_s * self.backoff_multiplier ** (attempt - 1))
        return base * (1.0 + self.jitter_frac * rng.random())


@dataclass
class CallOutcome:
    """One target's result in a :meth:`RpcNetwork.multicall` fan-out.

    Either ``value`` (when ``ok``) or ``error`` (the exception that leg
    hit) is meaningful — never both.  The degraded query executor and the
    heartbeat poller consume this instead of guessing which targets a
    half-failed fan-out actually reached.
    """

    ok: bool
    value: Any = None
    error: Optional[Exception] = None


@dataclass
class HedgedOutcome:
    """Result of :meth:`RpcNetwork.hedged_call`.

    ``primary`` always holds the primary leg's :class:`CallOutcome`;
    ``secondary`` is ``None`` unless the hedge launched (``hedged``).
    End times are absolute virtual timestamps — the caller advances to
    the loser's end only if it must consume the loser's answer.
    """

    primary: CallOutcome
    secondary: Optional[CallOutcome] = None
    primary_end: float = 0.0
    secondary_end: Optional[float] = None
    hedged: bool = False


class RpcEndpoint:
    """A named set of RPC handlers living on one machine."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._handlers: Dict[str, Handler] = {}
        self.up = True

    def register(self, method: str, handler: Handler) -> None:
        """Bind a handler to a method name (once)."""
        if method in self._handlers:
            raise ClusterError(f"{self.name}: handler already registered: {method}")
        self._handlers[method] = handler

    def dispatch(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Run a handler directly (no network charge); raises if down."""
        if not self.up:
            raise NodeDown(f"{self.name} is down")
        try:
            handler = self._handlers[method]
        except KeyError:
            raise ClusterError(f"{self.name}: no handler for {method!r}") from None
        return handler(*args, **kwargs)

    def fail(self) -> None:
        """Mark the node failed; subsequent calls raise :class:`NodeDown`."""
        self.up = False

    def recover(self) -> None:
        """Bring a failed node back up."""
        self.up = True


class RpcNetwork:
    """Routes calls between endpoints over a :class:`NetworkModel`.

    ``local=True`` marks calls that never cross the wire (single-node mode,
    used for the MySQL and Spotlight comparisons).

    ``retry_policy`` (optional) makes every call survive transient faults:
    lost messages and down nodes are retried with backoff until the policy
    gives up.  ``faults`` (optional, duck-typed — see
    :class:`repro.chaos.FaultInjector`) decides per-message fates and
    per-node straggler delay; ``registry`` (optional) receives
    ``cluster.rpc.*`` counters.  All three default to off, keeping the
    fault-free request path identical to the historical one.
    """

    def __init__(self, network: NetworkModel,
                 retry_policy: Optional[RetryPolicy] = None,
                 rng: Optional[random.Random] = None,
                 registry=None) -> None:
        self.network = network
        self._endpoints: Dict[str, RpcEndpoint] = {}
        # Observability: spans per call (zero simulated cost; NULL_TRACER
        # by default so uninstrumented deployments pay nothing).
        self.tracer = NULL_TRACER
        self.retry_policy = retry_policy
        self.rng = rng if rng is not None else random.Random(0)
        self.registry = registry
        self.faults = None

    def add_endpoint(self, endpoint: RpcEndpoint) -> None:
        """Attach a node's endpoint to the network."""
        if endpoint.name in self._endpoints:
            raise ClusterError(f"duplicate endpoint: {endpoint.name}")
        self._endpoints[endpoint.name] = endpoint

    def endpoint(self, name: str) -> RpcEndpoint:
        """Look up an endpoint by name or raise :class:`ClusterError`."""
        try:
            return self._endpoints[name]
        except KeyError:
            raise ClusterError(f"unknown endpoint: {name}") from None

    def _count(self, name: str, n: int = 1) -> None:
        if self.registry is not None:
            self.registry.counter(name).inc(n)

    def _timeout_s(self) -> float:
        if self.retry_policy is not None:
            return self.retry_policy.timeout_s
        return DEFAULT_RPC_TIMEOUT_S

    def _leg(self, nbytes: int, local: bool) -> None:
        """Charge one network leg."""
        if local:
            self.network.send_local(nbytes)
        else:
            self.network.send(nbytes)

    def _attempt(self, endpoint: RpcEndpoint, method: str, args, kwargs,
                 local: bool, request_bytes: int, response_bytes: int) -> Any:
        """One request/response exchange, subject to injected faults."""
        faults = self.faults
        if faults is not None:
            fate = faults.message_fate(endpoint.name, method)
            if fate == "drop":
                # The request (or its reply) never arrives: the caller
                # burns its full timeout waiting, then gives up.
                self.network.clock.charge(self._timeout_s())
                self._count("cluster.rpc.timeouts")
                raise RpcTimeout(
                    f"rpc {method!r} to {endpoint.name} timed out "
                    f"(message lost)")
            if fate == "delay":
                self.network.clock.charge(faults.delay_s)
            straggle = faults.extra_latency_s(endpoint.name)
            if straggle > 0.0:
                self.network.clock.charge(straggle)
            self._leg(request_bytes, local)
            result = endpoint.dispatch(method, *args, **kwargs)
            if fate == "duplicate":
                # At-least-once delivery: the handler runs again on the
                # duplicated request.  Handlers must be idempotent; the
                # chaos invariant checker verifies they are.
                self._count("cluster.rpc.duplicates")
                endpoint.dispatch(method, *args, **kwargs)
            self._leg(response_bytes, local)
            return result
        self._leg(request_bytes, local)
        result = endpoint.dispatch(method, *args, **kwargs)
        self._leg(response_bytes, local)
        return result

    def call(self, target: str, method: str, *args: Any,
             local: bool = False, request_bytes: int = _DEFAULT_MSG_BYTES,
             response_bytes: int = _DEFAULT_MSG_BYTES, **kwargs: Any) -> Any:
        """Synchronous RPC: charge request, run handler, charge response.

        With a :class:`RetryPolicy` attached, transient failures
        (:class:`NodeDown`, :class:`RpcTimeout`) are retried with backoff
        until attempts or the virtual-time budget run out; the last error
        then escapes.  Non-transient errors always escape immediately.
        """
        endpoint = self.endpoint(target)
        policy = self.retry_policy
        with self.tracer.span(f"rpc:{method}", target=target) as span:
            if policy is None:
                return self._attempt(endpoint, method, args, kwargs,
                                     local, request_bytes, response_bytes)
            spent = 0.0
            attempt = 1
            while True:
                try:
                    return self._attempt(endpoint, method, args, kwargs,
                                         local, request_bytes, response_bytes)
                except _RETRIABLE as exc:
                    if isinstance(exc, RpcTimeout):
                        spent += self._timeout_s()
                    if attempt >= policy.max_attempts or spent >= policy.budget_s:
                        self._count("cluster.rpc.failures")
                        span.set_attribute("attempts", attempt)
                        raise
                    backoff = policy.backoff_s(attempt, self.rng)
                    self.network.clock.charge(backoff)
                    spent += backoff
                    attempt += 1
                    self._count("cluster.rpc.retries")

    def hedged_call(self, primary: str, secondary: str, method: str,
                    hedge_delay_s: float, *args: Any,
                    secondary_method: Optional[str] = None,
                    secondary_args: Optional[tuple] = None,
                    secondary_kwargs: Optional[dict] = None,
                    **kwargs: Any) -> "HedgedOutcome":
        """One logical call raced against a replica after a hedge timer.

        The call goes to ``primary`` first; if it is still outstanding
        after ``hedge_delay_s`` of virtual time the same call (or
        ``secondary_method``/``secondary_args``, when the replica speaks
        a different method) is issued to ``secondary``.  The first
        answer wins and the loser is *cancelled* — its remaining work is
        not waited for, which is what collapses the leg's tail.  Both
        legs run under the normal retry policy; transient errors
        (:class:`NodeDown`, :class:`RpcTimeout`) surface as the leg's
        ``CallOutcome`` instead of escaping, so the caller can decide
        which answers are usable.  ``cluster.client.hedges`` /
        ``hedge_wins`` / ``hedge_cancelled`` count launches, secondary
        wins, and loser cancellations.
        """
        clock = self.network.clock
        s_method = secondary_method if secondary_method is not None else method
        s_args = secondary_args if secondary_args is not None else args
        s_kwargs = secondary_kwargs if secondary_kwargs is not None else kwargs

        def leg(target: str, m: str, a: tuple, kw: dict) -> CallOutcome:
            try:
                return CallOutcome(ok=True, value=self.call(target, m, *a, **kw))
            except _RETRIABLE as exc:
                return CallOutcome(ok=False, error=exc)

        race = clock.race(lambda: leg(primary, method, args, kwargs),
                          lambda: leg(secondary, s_method, s_args, s_kwargs),
                          hedge_delay_s)
        outcome = HedgedOutcome(
            primary=race.primary_result, secondary=race.secondary_result,
            primary_end=race.primary_end, secondary_end=race.secondary_end,
            hedged=race.launched)
        if race.launched:
            self._count("cluster.client.hedges")
            if race.secondary_end < race.primary_end:
                self._count("cluster.client.hedge_wins")
            self._count("cluster.client.hedge_cancelled")
        return outcome

    def multicall(self, targets: list, method: str, *args: Any,
                  request_bytes: int = _DEFAULT_MSG_BYTES,
                  **kwargs: Any) -> Dict[str, CallOutcome]:
        """Parallel fan-out returning a per-target result/error map.

        All requests go out together (network legs overlap — one
        ``fanout`` charge each way) and every target is attempted even
        when earlier ones fail: a dead endpoint surfaces as that target's
        :class:`CallOutcome` with ``ok=False`` instead of masking which
        of the other targets succeeded.  Handler work is charged by the
        handlers themselves — the caller should measure and overlap it if
        it models parallel servers (see ``cluster.service``).
        """
        if not targets:
            return {}
        outcomes: Dict[str, CallOutcome] = {}
        with self.tracer.span(f"rpc_multicall:{method}", targets=len(targets)):
            self.network.fanout([request_bytes] * len(targets))
            for t in targets:
                with self.tracer.span(f"rpc:{method}", target=t) as span:
                    try:
                        value = self.endpoint(t).dispatch(method, *args, **kwargs)
                    except ClusterError as exc:
                        span.mark_error(f"{type(exc).__name__}: {exc}")
                        outcomes[t] = CallOutcome(ok=False, error=exc)
                    else:
                        outcomes[t] = CallOutcome(ok=True, value=value)
            self.network.fanout([_DEFAULT_MSG_BYTES] * len(targets))
        return outcomes
