"""Simulated synchronous RPC.

Propeller's client talks to the Master Node and Index Nodes over RPC.  The
simulation keeps calls synchronous (the paper's request path is
request/response) and charges: request message + handler work (whatever the
handler itself charges) + response message.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.errors import ClusterError, NodeDown
from repro.obs.tracing import NULL_TRACER
from repro.sim.network import NetworkModel

Handler = Callable[..., Any]

# Rough serialized size of an RPC envelope plus a typical small payload.
_DEFAULT_MSG_BYTES = 256


class RpcEndpoint:
    """A named set of RPC handlers living on one machine."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._handlers: Dict[str, Handler] = {}
        self.up = True

    def register(self, method: str, handler: Handler) -> None:
        """Bind a handler to a method name (once)."""
        if method in self._handlers:
            raise ClusterError(f"{self.name}: handler already registered: {method}")
        self._handlers[method] = handler

    def dispatch(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Run a handler directly (no network charge); raises if down."""
        if not self.up:
            raise NodeDown(f"{self.name} is down")
        try:
            handler = self._handlers[method]
        except KeyError:
            raise ClusterError(f"{self.name}: no handler for {method!r}") from None
        return handler(*args, **kwargs)

    def fail(self) -> None:
        """Mark the node failed; subsequent calls raise :class:`NodeDown`."""
        self.up = False

    def recover(self) -> None:
        """Bring a failed node back up."""
        self.up = True


class RpcNetwork:
    """Routes calls between endpoints over a :class:`NetworkModel`.

    ``local=True`` marks calls that never cross the wire (single-node mode,
    used for the MySQL and Spotlight comparisons).
    """

    def __init__(self, network: NetworkModel) -> None:
        self.network = network
        self._endpoints: Dict[str, RpcEndpoint] = {}
        # Observability: spans per call (zero simulated cost; NULL_TRACER
        # by default so uninstrumented deployments pay nothing).
        self.tracer = NULL_TRACER

    def add_endpoint(self, endpoint: RpcEndpoint) -> None:
        """Attach a node's endpoint to the network."""
        if endpoint.name in self._endpoints:
            raise ClusterError(f"duplicate endpoint: {endpoint.name}")
        self._endpoints[endpoint.name] = endpoint

    def endpoint(self, name: str) -> RpcEndpoint:
        """Look up an endpoint by name or raise :class:`ClusterError`."""
        try:
            return self._endpoints[name]
        except KeyError:
            raise ClusterError(f"unknown endpoint: {name}") from None

    def call(self, target: str, method: str, *args: Any,
             local: bool = False, request_bytes: int = _DEFAULT_MSG_BYTES,
             response_bytes: int = _DEFAULT_MSG_BYTES, **kwargs: Any) -> Any:
        """Synchronous RPC: charge request, run handler, charge response."""
        endpoint = self.endpoint(target)
        with self.tracer.span(f"rpc:{method}", target=target):
            if local:
                self.network.send_local(request_bytes)
            else:
                self.network.send(request_bytes)
            result = endpoint.dispatch(method, *args, **kwargs)
            if local:
                self.network.send_local(response_bytes)
            else:
                self.network.send(response_bytes)
        return result

    def multicall(self, targets: list, method: str, *args: Any,
                  request_bytes: int = _DEFAULT_MSG_BYTES, **kwargs: Any) -> list:
        """Parallel fan-out: all requests go out together, handlers run,
        and the caller waits for the slowest reply.

        Network legs overlap (one ``fanout`` charge each way); handler work
        is charged by the handlers themselves — the caller should measure
        and overlap it if it models parallel servers (see
        ``cluster.service``).
        """
        if not targets:
            return []
        with self.tracer.span(f"rpc_multicall:{method}", targets=len(targets)):
            self.network.fanout([request_bytes] * len(targets))
            results = []
            for t in targets:
                with self.tracer.span(f"rpc:{method}", target=t):
                    results.append(self.endpoint(t).dispatch(method, *args, **kwargs))
            self.network.fanout([_DEFAULT_MSG_BYTES] * len(targets))
        return results
