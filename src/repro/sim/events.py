"""A small discrete-event loop.

Used where the paper has genuinely asynchronous background activity: the
Spotlight-like crawler's periodic re-index passes, Propeller's 5-second
index-cache timeout, heartbeats, and background ACG splits.  Timers fire in
timestamp order; running the loop advances the shared clock to each firing.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import SimClock

Action = Callable[[], Any]


class EventLoop:
    """Timestamp-ordered one-shot timers over a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._heap: List[Tuple[float, int, Action]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule_at(self, timestamp: float, action: Action) -> None:
        """Run ``action`` when virtual time reaches ``timestamp``."""
        if timestamp < self.clock.now():
            raise SimulationError(
                f"cannot schedule in the past: {timestamp} < {self.clock.now()}"
            )
        heapq.heappush(self._heap, (timestamp, next(self._seq), action))

    def schedule_after(self, delay: float, action: Action) -> None:
        """Run ``action`` after ``delay`` virtual seconds."""
        self.schedule_at(self.clock.now() + delay, action)

    def next_deadline(self) -> Optional[float]:
        """Timestamp of the earliest pending timer (None when idle)."""
        return self._heap[0][0] if self._heap else None

    def run_due(self) -> int:
        """Fire every timer whose deadline has already passed; return count.

        Does not advance the clock — callers use this to let background
        work catch up after foreground operations charged time.
        """
        fired = 0
        while self._heap and self._heap[0][0] <= self.clock.now():
            _, _, action = heapq.heappop(self._heap)
            action()
            fired += 1
        return fired

    def run_until(self, timestamp: float) -> int:
        """Advance the clock to ``timestamp``, firing timers in order."""
        if timestamp < self.clock.now():
            raise SimulationError("run_until target is in the past")
        fired = 0
        while self._heap and self._heap[0][0] <= timestamp:
            deadline, _, action = heapq.heappop(self._heap)
            if deadline > self.clock.now():
                self.clock.advance_to(deadline)
            action()
            fired += 1
        # An action may itself have charged time past the target; never
        # move backwards.
        if timestamp > self.clock.now():
            self.clock.advance_to(timestamp)
        return fired


class PeriodicTask:
    """Re-arms itself on the loop every ``period`` seconds until cancelled."""

    def __init__(self, loop: EventLoop, period: float, action: Action) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive: {period}")
        self.loop = loop
        self.period = period
        self.action = action
        self._cancelled = False
        self._arm()

    def _arm(self) -> None:
        self.loop.schedule_after(self.period, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.action()
        self._arm()

    def cancel(self) -> None:
        """Stop re-arming; pending firings become no-ops."""
        self._cancelled = True
