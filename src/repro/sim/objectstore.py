"""A simulated cloud object store (the cold tier under tiered indexing).

Models an S3-class service: every request pays a fixed first-byte
latency (dominated by the HTTPS round trip, not the medium) plus a
bandwidth-proportional transfer, and every request and stored byte
accrues *simulated dollars* — the quantity the tiered-storage benchmark
trades off against hydration latency.  All time lands on the shared
:class:`~repro.sim.clock.SimClock` and no wall clock or RNG is touched,
so runs stay bit-deterministic.

Chaos hooks mirror :class:`~repro.sim.disk.DiskDevice`: an attached
:class:`~repro.chaos.faults.FaultInjector` may fail a GET after the cost
is paid (:class:`~repro.errors.ObjectStoreError`, a ``DiskIOError``
subclass so search legs degrade instead of dying) or stretch it with
extra hydration latency.  With no injector attached — or all rates at
zero — no RNG is consulted, keeping fault-free schedules byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ObjectStoreError
from repro.sim.clock import SimClock

_GB = 1024 ** 3
_MONTH_S = 30 * 24 * 3600.0


@dataclass(frozen=True)
class ObjectStoreModel:
    """Cost constants for an S3-class object store.

    Latency defaults approximate a same-region store: ~30 ms to first
    byte on GET (TLS + request routing), slightly worse on PUT, and
    ~100 MB/s of per-stream bandwidth.  Prices follow the classic
    standard-tier shape: PUTs an order of magnitude dearer than GETs,
    plus a $/GB-month storage rate.
    """

    get_first_byte_s: float = 0.030
    put_first_byte_s: float = 0.045
    bandwidth_bytes_per_s: float = 100e6
    put_cost_usd: float = 5e-6
    get_cost_usd: float = 4e-7
    storage_usd_per_gb_month: float = 0.023

    def get_cost_s(self, nbytes: int) -> float:
        """Seconds for one GET of ``nbytes``."""
        return self.get_first_byte_s + nbytes / self.bandwidth_bytes_per_s

    def put_cost_s(self, nbytes: int) -> float:
        """Seconds for one PUT of ``nbytes``."""
        return self.put_first_byte_s + nbytes / self.bandwidth_bytes_per_s


@dataclass
class ObjectStoreStats:
    """Counters accumulated by a :class:`SimObjectStore`."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    errors: int = 0
    busy_seconds: float = 0.0


class SimObjectStore:
    """An in-memory object store that charges S3-shaped costs.

    Storage dollars are accrued by integrating resident bytes over
    virtual time: every mutation first settles ``bytes * dt`` into
    ``_byte_seconds`` at the old occupancy, so :meth:`simulated_cost_usd`
    is exact at any settle point and fully deterministic.
    """

    def __init__(self, clock: SimClock, model: ObjectStoreModel | None = None) -> None:
        self.clock = clock
        self.model = model if model is not None else ObjectStoreModel()
        self.stats = ObjectStoreStats()
        # Fault injection (chaos): when attached, GETs may raise
        # ObjectStoreError after paying the request cost, or pay extra
        # "slow hydration" latency.  None means the store is healthy.
        self.faults = None
        self._objects: dict[str, bytes] = {}
        self._stored_bytes = 0
        self._byte_seconds = 0.0
        self._last_settle_t = clock.now()

    # -- occupancy accounting ----------------------------------------------------

    def _settle_storage(self) -> None:
        now = self.clock.now()
        self._byte_seconds += self._stored_bytes * (now - self._last_settle_t)
        self._last_settle_t = now

    def _charge(self, cost_s: float) -> None:
        self.stats.busy_seconds += cost_s
        self.clock.charge(cost_s)

    # -- requests ----------------------------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        """Store an object (replacing any previous version)."""
        self._charge(self.model.put_cost_s(len(data)))
        self._settle_storage()
        previous = self._objects.get(key)
        if previous is not None:
            self._stored_bytes -= len(previous)
        self._objects[key] = bytes(data)
        self._stored_bytes += len(data)
        self.stats.puts += 1
        self.stats.bytes_in += len(data)

    def get(self, key: str) -> bytes:
        """Fetch an object's bytes.

        Pays first-byte + transfer cost before any failure is reported
        (the request went out and timed out / came back bad), then —
        with a fault injector attached — may pay extra slow-hydration
        latency or raise :class:`~repro.errors.ObjectStoreError`.
        """
        data = self._objects.get(key)
        self._charge(self.model.get_cost_s(len(data) if data is not None else 0))
        if self.faults is not None:
            extra = self.faults.hydration_delay_s()
            if extra > 0.0:
                self._charge(extra)
            if self.faults.object_read_fails():
                self.stats.errors += 1
                raise ObjectStoreError(f"injected object-store error on {key!r}")
        if data is None:
            self.stats.errors += 1
            raise ObjectStoreError(f"no such object: {key!r}")
        self.stats.gets += 1
        self.stats.bytes_out += len(data)
        return data

    def delete(self, key: str) -> bool:
        """Remove an object; returns whether it existed.  DELETEs are
        free of request charges in the classic pricing model, but still
        settle storage occupancy."""
        self._settle_storage()
        data = self._objects.pop(key, None)
        if data is None:
            return False
        self._stored_bytes -= len(data)
        self.stats.deletes += 1
        return True

    # -- introspection -----------------------------------------------------------

    def exists(self, key: str) -> bool:
        """Whether an object is stored under ``key`` (no request charge)."""
        return key in self._objects

    def size(self, key: str) -> int:
        """Stored size of one object (0 if absent; no request charge)."""
        data = self._objects.get(key)
        return len(data) if data is not None else 0

    def keys(self) -> list[str]:
        """Sorted keys of every stored object."""
        return sorted(self._objects)

    def stored_bytes(self) -> int:
        """Total bytes currently resident in the store."""
        return self._stored_bytes

    def simulated_cost_usd(self) -> float:
        """Accrued simulated dollars: requests + GB-months of storage."""
        self._settle_storage()
        storage = (self._byte_seconds / _GB) / _MONTH_S \
            * self.model.storage_usd_per_gb_month
        return (self.stats.puts * self.model.put_cost_usd
                + self.stats.gets * self.model.get_cost_usd
                + storage)
