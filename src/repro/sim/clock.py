"""Virtual time.

All simulated components share one :class:`SimClock`.  Work is expressed by
*charging* durations to the clock; queries of :meth:`SimClock.now` give the
virtual timestamp used for mtimes, timeouts and latency measurements.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """A monotonically increasing virtual clock measured in seconds.

    The clock supports nested *spans*: a span records the virtual time that
    elapsed while it was open, which is how benchmarks measure per-request
    latency without wall-clock noise.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Return the current virtual time in seconds."""
        return self._now

    def charge(self, seconds: float) -> None:
        """Advance the clock by ``seconds`` of simulated work.

        Negative charges are rejected: virtual time never runs backwards.
        """
        if seconds < 0:
            raise SimulationError(f"cannot charge negative time: {seconds}")
        self._now += seconds

    def advance_to(self, timestamp: float) -> None:
        """Jump the clock forward to ``timestamp`` (e.g. idle until a timer).

        Jumping backwards is rejected.
        """
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = timestamp

    def span(self) -> "ClockSpan":
        """Open a measurement span; ``span.elapsed()`` gives time since open."""
        return ClockSpan(self)

    def parallel(self, thunks) -> list:
        """Run thunks as logically concurrent work.

        Each thunk executes (so its side effects — cache state, results —
        happen), its individually-charged virtual time is measured, and
        the clock finally lands at ``start + max(durations)``: concurrent
        servers overlap, so the caller waits only for the slowest.  This
        models the paper's parallel fan-out of search requests to Index
        Nodes.  Returns the thunk results in order.
        """
        start = self._now
        results = []
        longest = 0.0
        for thunk in thunks:
            self._now = start
            results.append(thunk())
            longest = max(longest, self._now - start)
        self._now = start + longest
        return results

    def race(self, primary, secondary, secondary_delay_s: float) -> "RaceOutcome":
        """Run ``primary`` and, if it is still outstanding after
        ``secondary_delay_s``, launch ``secondary`` concurrently — the
        hedged-request shape from "The Tail at Scale".

        The primary runs from ``start``; if it finishes within the delay
        the secondary never launches.  Otherwise the secondary runs from
        ``start + delay`` and the clock lands at the *earlier* finish
        time — the caller took the first answer and cancelled the loser.
        When the caller nonetheless needs the loser's answer (the winner
        turned out unusable), it pays the difference via
        :meth:`advance_to` with the loser's end time.

        Thunks must catch their own exceptions and return error values;
        an escaping exception would leave the clock mid-rewind.

        Caveat — causality is approximate: the primary thunk runs *to
        completion* before the secondary starts, so the secondary
        observes all of the primary's side effects (index state, cache
        fills) even for virtual instants when the two are "concurrent",
        and the primary observes none of the secondary's.  This is the
        same single-threaded interleaving approximation as
        :meth:`parallel`; it models latency overlap, not state races.
        Racing two thunks whose *correctness* depends on interleaved
        mutation of shared state is outside this model.
        """
        if secondary_delay_s < 0:
            raise SimulationError(
                f"hedge delay cannot be negative: {secondary_delay_s}")
        start = self._now
        primary_result = primary()
        primary_end = self._now
        if primary_end - start <= secondary_delay_s:
            self._now = primary_end
            return RaceOutcome(primary_result, None, primary_end, None, False)
        self._now = start + secondary_delay_s
        secondary_result = secondary()
        secondary_end = self._now
        self._now = min(primary_end, secondary_end)
        return RaceOutcome(primary_result, secondary_result,
                           primary_end, secondary_end, True)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"


class RaceOutcome:
    """Result of :meth:`SimClock.race`.

    ``secondary_result``/``secondary_end`` are ``None`` when the hedge
    never launched (``launched`` is False).  End times are absolute
    virtual timestamps so the caller can ``advance_to`` the loser's end
    if it ends up needing that answer.
    """

    __slots__ = ("primary_result", "secondary_result",
                 "primary_end", "secondary_end", "launched")

    def __init__(self, primary_result, secondary_result,
                 primary_end: float, secondary_end, launched: bool) -> None:
        self.primary_result = primary_result
        self.secondary_result = secondary_result
        self.primary_end = primary_end
        self.secondary_end = secondary_end
        self.launched = launched


class ClockSpan:
    """Measures virtual time elapsed since the span was created."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now()

    @property
    def start(self) -> float:
        """The virtual time at which the span was opened."""
        return self._start

    def elapsed(self) -> float:
        """Virtual seconds since the span was opened."""
        return self._clock.now() - self._start
