"""Page-cache model.

Table IV's super-linear speedup happens where a node's share of the file
indices first fits in RAM — page faults vanish.  :class:`PageCache` models
exactly that: an LRU cache of fixed byte capacity; a miss charges a disk
access, a hit charges (almost) nothing.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.obs.tracing import NULL_TRACER
from repro.sim.disk import DiskDevice

PAGE_SIZE = 4096


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total touches (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of touches served from the cache."""
        return self.hits / self.accesses if self.accesses else 0.0


class PageCache:
    """An LRU page cache in front of a :class:`DiskDevice`.

    Pages are identified by ``(namespace, page_number)`` so independent
    structures sharing one machine do not alias each other's pages.
    """

    def __init__(self, disk: DiskDevice, capacity_bytes: int, hit_cost_s: float = 2e-7) -> None:
        if capacity_bytes < PAGE_SIZE:
            raise SimulationError(f"cache smaller than one page: {capacity_bytes}")
        self.disk = disk
        self.capacity_pages = capacity_bytes // PAGE_SIZE
        self.hit_cost_s = hit_cost_s
        self.stats = CacheStats()
        # Hit/fault counts annotate the open span (zero simulated cost).
        self.tracer = NULL_TRACER
        self._lru: OrderedDict[tuple, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._lru)

    def touch(self, namespace: str, page: int, write: bool = False) -> bool:
        """Access one page; return True on hit.

        A miss reads the page from disk (charging a random access) and may
        evict the least-recently-used page.
        """
        key = (namespace, page)
        if key in self._lru:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            self.tracer.annotate("page_hits")
            self.disk.clock.charge(self.hit_cost_s)
            return True
        self.stats.misses += 1
        self.tracer.annotate("page_faults")
        # crc32 (not builtin hash) keeps disk offsets — and therefore
        # sequentiality detection — identical across processes.
        offset = (zlib.crc32(repr(key).encode()) % (1 << 30)) * PAGE_SIZE
        if write:
            self.disk.write(offset, PAGE_SIZE)
        else:
            self.disk.read(offset, PAGE_SIZE)
        self._lru[key] = None
        if len(self._lru) > self.capacity_pages:
            self._lru.popitem(last=False)
            self.stats.evictions += 1
        return False

    def access_bytes(self, namespace: str, start_byte: int, nbytes: int, write: bool = False) -> None:
        """Access a byte range, touching every page it spans."""
        if nbytes <= 0:
            return
        first = start_byte // PAGE_SIZE
        last = (start_byte + nbytes - 1) // PAGE_SIZE
        for page in range(first, last + 1):
            self.touch(namespace, page, write=write)

    def invalidate(self, namespace: str) -> int:
        """Drop all cached pages of one namespace; return how many."""
        victims = [k for k in self._lru if k[0] == namespace]
        for k in victims:
            del self._lru[k]
        return len(victims)

    def drop_all(self) -> None:
        """Simulate ``echo 3 > /proc/sys/vm/drop_caches`` (cold-cache runs)."""
        self._lru.clear()
