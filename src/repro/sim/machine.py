"""Simulated machines and clusters.

A :class:`Machine` bundles the per-node resources the paper's testbed had:
a CPU (fixed rate for charging computation), one HDD, and a page cache whose
capacity reflects the node's RAM (4–16 GB on the testbed).  A
:class:`Cluster` shares one clock and one network across machines — the
simulation is *logically* concurrent but advances a single virtual clock;
benchmark harnesses account for overlap explicitly where the paper's
operations are parallel (fan-out search, per-process indexing streams).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import SimClock
from repro.sim.disk import DiskDevice, HDDModel
from repro.sim.memory import PageCache
from repro.sim.network import NetworkModel


@dataclass(frozen=True)
class MachineSpec:
    """Hardware description of one node.

    Defaults mirror the paper's Index Nodes: quad-core Xeon X3440, 4 GB of
    RAM usable as page cache, one 7 200-RPM drive.
    """

    name: str = "node"
    cpu_ops_per_s: float = 2.53e9
    ram_bytes: int = 4 * 1024**3
    disk_model: HDDModel = HDDModel()


class Machine:
    """One simulated node: CPU + disk + page cache on a shared clock."""

    def __init__(self, clock: SimClock, spec: MachineSpec | None = None) -> None:
        self.clock = clock
        self.spec = spec if spec is not None else MachineSpec()
        self.disk = DiskDevice(clock, self.spec.disk_model)
        self.page_cache = PageCache(self.disk, self.spec.ram_bytes)

    @property
    def name(self) -> str:
        """The machine's node name."""
        return self.spec.name

    def compute(self, ops: float) -> None:
        """Charge ``ops`` units of CPU work at the machine's clock rate."""
        self.clock.charge(ops / self.spec.cpu_ops_per_s)

    def drop_caches(self) -> None:
        """Cold-start this node (used before 'cold query' measurements)."""
        self.page_cache.drop_all()
        self.disk.reset_head()

    def __repr__(self) -> str:
        return f"Machine({self.name!r})"


class Cluster:
    """A set of machines behind one switch, sharing a virtual clock."""

    def __init__(self, node_names: list, spec: MachineSpec | None = None,
                 network: NetworkModel | None = None, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.network = network if network is not None else NetworkModel(self.clock)
        base = spec if spec is not None else MachineSpec()
        self.machines = {
            name: Machine(self.clock, MachineSpec(
                name=name,
                cpu_ops_per_s=base.cpu_ops_per_s,
                ram_bytes=base.ram_bytes,
                disk_model=base.disk_model,
            ))
            for name in node_names
        }

    def __getitem__(self, name: str) -> Machine:
        return self.machines[name]

    def __len__(self) -> int:
        return len(self.machines)

    def __iter__(self):
        return iter(self.machines.values())

    def drop_caches(self) -> None:
        """Cold-start every machine in the cluster."""
        for machine in self:
            machine.drop_caches()
