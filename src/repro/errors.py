"""Exception hierarchy shared by every repro subpackage.

Each layer raises a subclass of :class:`ReproError` so callers can catch
library failures without accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FileSystemError(ReproError):
    """Base class for virtual-file-system failures."""


class FileNotFound(FileSystemError):
    """A path does not resolve to an inode."""


class FileExists(FileSystemError):
    """Create was asked to make a path that already exists."""

class NotADirectory(FileSystemError):
    """A directory operation hit a regular file."""


class IsADirectory(FileSystemError):
    """A file operation hit a directory."""


class BadFileDescriptor(FileSystemError):
    """An I/O call used a closed or unknown file handle."""


class IndexError_(ReproError):
    """Base class for index-structure failures (named with a trailing
    underscore to avoid shadowing the builtin)."""


class KeyNotFound(IndexError_):
    """Lookup or delete of a key that is not in the index."""


class DuplicateKey(IndexError_):
    """Insert of a key that already exists in a unique index."""


class QueryError(ReproError):
    """A file-search query failed to parse or plan."""


class ClusterError(ReproError):
    """Base class for Propeller-cluster failures."""


class UnknownAcg(ClusterError):
    """A request referenced an ACG id the Master Node does not know."""


class UnknownIndexNode(ClusterError):
    """A request referenced an Index Node that is not registered."""


class UnknownIndexName(ClusterError):
    """A search referenced a user-defined index name that was never created."""


class NodeDown(ClusterError):
    """An RPC was sent to a node that is marked failed."""


class StaleRoute(ClusterError):
    """An epoch-stamped request hit an Index Node that no longer (or not
    yet) owns the partition it was routed to.

    This is the routing layer's NACK: it is *not* transient, so the RPC
    retry loop lets it escape immediately — the correct reaction is to
    refresh the cached route table and re-route, not to resend the same
    request to the same node.  ``epoch`` carries the responding node's
    latest known routing epoch so the caller can tell how stale it is.
    """

    def __init__(self, message: str, epoch: int = 0) -> None:
        super().__init__(message)
        self.epoch = epoch


class StaleReplEpoch(ClusterError):
    """A replication message carried an older replication epoch than the
    receiver's state.

    This is the replication layer's fence: a deposed primary (failed
    over while silent) or a pre-generation-restart stream must not
    overwrite state it no longer owns.  Not transient — the correct
    reaction on the sender is to stop acting as primary for the
    partition, not to resend.
    """


class StaleMasterTerm(ClusterError):
    """A master-originated mutating RPC carried an older master term than
    the receiver has already seen.

    This is the control plane's fence: a deposed-but-alive Master
    (partitioned away while the standby promoted) must never mutate
    cluster state.  Not transient — the correct reaction on the sender is
    to stop acting as Master, not to resend.  ``term`` carries the
    receiver's newest known term so the stale sender can tell how far
    behind it is.
    """

    def __init__(self, message: str, term: int = 0) -> None:
        super().__init__(message)
        self.term = term


class NotActingMaster(ClusterError):
    """A client called a Master endpoint that is not (or no longer) the
    acting Master.

    Not transient for the RPC retry loop — resending to the same
    endpoint cannot help; the caller must re-home to the acting Master.
    ``acting`` optionally names the endpoint the receiver believes is
    acting (its promotion peer), as a re-homing hint.
    """

    def __init__(self, message: str, acting: str = "") -> None:
        super().__init__(message)
        self.acting = acting


class RpcTimeout(ClusterError):
    """An RPC request or response was lost and the caller's timer fired.

    Raised after the retry budget (if any) is exhausted; transient
    timeouts inside the retry loop never escape."""


class DiskIOError(ClusterError):
    """An injected storage fault: a device read failed mid-transfer."""


class WalCorruption(ClusterError):
    """The write-ahead log failed checksum validation during replay."""


class ObjectStoreError(DiskIOError):
    """A simulated object-store request failed (injected fault or
    missing key).  Subclasses :class:`DiskIOError` so a search leg that
    trips on a cold-tier read degrades instead of failing the query."""


class SegmentCorruption(ClusterError):
    """A frozen index segment failed magic/CRC validation on read."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation substrate."""
